// Determinism suite for the parallel trial runner: at a fixed seed,
// every cut the harness reports must be bit-identical for any thread
// count — the property that keeps EXPERIMENTS.md reproducible now that
// trials run concurrently. Also covers the thread pool itself, the
// splitmix64 trial-seed stream, and the run_method timing split.
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/gen/gnp.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/harness/experiments.hpp"
#include "gbis/harness/parallel_runner.hpp"
#include "gbis/harness/runner.hpp"
#include "gbis/harness/thread_pool.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/rng/splitmix.hpp"

namespace gbis {
namespace {

RunConfig fast_config(std::uint32_t starts, std::uint32_t threads) {
  RunConfig config;
  config.starts = starts;
  config.threads = threads;
  config.sa.temperature_length_factor = 2.0;
  config.sa.cooling_ratio = 0.85;
  return config;
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> out(round);
    pool.parallel_for(out.size(),
                      [&](std::size_t i) { out[i] = static_cast<int>(i); });
    for (int i = 0; i < round; ++i) EXPECT_EQ(out[i], i);
  }
}

TEST(ThreadPool, PropagatesJobExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t i) {
                                   if (i == 7) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // ...and the pool is still usable afterwards.
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(5), 5u);
}

TEST(SplitMix, StreamMatchesSequentialOutputs) {
  SplitMix64 sm(12345);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(splitmix64_at(12345, i), sm.next());
  }
}

TEST(SplitMix, DistinctTrialsGetDistinctSeeds) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.push_back(splitmix64_at(19890625, i));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

// The tentpole property: the full trial matrix — all four paper
// methods, several graphs, several starts — produces bit-identical cuts
// for GBIS_THREADS in {1, 2, 8} at the same seed, and a sane per-trial
// seconds structure at every thread count.
TEST(ParallelRunner, TrialMatrixIsThreadCountInvariant) {
  Rng gen(11);
  std::vector<Graph> graphs;
  graphs.push_back(make_regular_planted({200, 8, 3}, gen));
  graphs.push_back(make_gnp(150, 0.04, gen));
  const Method methods[] = {Method::kSa, Method::kCsa, Method::kKl,
                            Method::kCkl};
  constexpr std::uint64_t kSeed = 19890625;
  constexpr std::uint32_t kStarts = 3;

  std::vector<std::vector<Weight>> cuts_by_threads;
  for (std::uint32_t threads : {1u, 2u, 8u}) {
    const auto outcomes = run_trial_matrix(
        graphs, methods, fast_config(kStarts, threads), kSeed);
    ASSERT_EQ(outcomes.size(), graphs.size() * std::size(methods));
    std::vector<Weight> cuts;
    for (const MethodOutcome& o : outcomes) {
      cuts.push_back(o.best_cut);
      ASSERT_EQ(o.trial_seconds.size(), kStarts);
      for (double s : o.trial_seconds) EXPECT_GT(s, 0.0);
      EXPECT_DOUBLE_EQ(
          o.cpu_seconds,
          std::accumulate(o.trial_seconds.begin(), o.trial_seconds.end(),
                          0.0));
      EXPECT_LT(o.best_start, kStarts);
    }
    cuts_by_threads.push_back(std::move(cuts));
  }
  EXPECT_EQ(cuts_by_threads[0], cuts_by_threads[1]);
  EXPECT_EQ(cuts_by_threads[0], cuts_by_threads[2]);
}

// run_four_way is the driver behind every appendix table: its cut
// columns must match bitwise across thread counts, and the driver Rng
// must advance identically (so later rows/graph generation agree too).
TEST(ParallelRunner, FourWayRowIsThreadCountInvariant) {
  Rng gen(3);
  std::vector<Graph> graphs;
  for (int i = 0; i < 2; ++i) {
    graphs.push_back(make_regular_planted({200, 8, 3}, gen));
  }

  std::vector<FourWayRow> rows;
  std::vector<std::uint64_t> next_draws;
  for (std::uint32_t threads : {1u, 2u, 8u}) {
    Rng rng(77);
    rows.push_back(run_four_way(graphs, rng, fast_config(2, threads)));
    next_draws.push_back(rng.next());
  }
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(rows[0].bsa, rows[i].bsa);
    EXPECT_EQ(rows[0].bcsa, rows[i].bcsa);
    EXPECT_EQ(rows[0].bkl, rows[i].bkl);
    EXPECT_EQ(rows[0].bckl, rows[i].bckl);
    EXPECT_EQ(next_draws[0], next_draws[i]);
  }
}

TEST(ParallelRunner, RunMethodSeededMatchesRunMethod) {
  Rng gen(5);
  const Graph g = make_gnp(150, 0.04, gen);
  const RunConfig config = fast_config(2, 2);
  Rng rng(99);
  const std::uint64_t base = Rng(99).next();
  const RunResult via_rng = run_method(g, Method::kCkl, rng, config);
  const RunResult via_seed = run_method_seeded(g, Method::kCkl, base, config);
  EXPECT_EQ(via_rng.best_cut, via_seed.best_cut);
}

TEST(ParallelRunner, BestSidesAreThreadCountInvariant) {
  Rng gen(9);
  const Graph g = make_regular_planted({200, 8, 3}, gen);
  std::vector<std::vector<std::uint8_t>> sides_by_threads;
  for (std::uint32_t threads : {1u, 8u}) {
    std::vector<std::uint8_t> sides;
    run_method_seeded(g, Method::kKl, 1234, fast_config(4, threads),
                      &sides);
    ASSERT_EQ(sides.size(), g.num_vertices());
    sides_by_threads.push_back(std::move(sides));
  }
  EXPECT_EQ(sides_by_threads[0], sides_by_threads[1]);
}

// Regression for the timing split: the old runner wrapped one WallTimer
// around the start loop, which reports nonsense once starts run
// concurrently. Per-trial CPU seconds must be positive, one per start,
// and their sum (the paper's total-over-starts protocol) must grow with
// the number of starts.
TEST(ParallelRunner, RunMethodTrialSecondsPositiveAndMonotoneInStarts) {
  const Graph g = make_grid(40, 40);
  double previous = 0.0;
  for (std::uint32_t starts : {1u, 3u, 6u}) {
    const RunResult r =
        run_method_seeded(g, Method::kKl, 42, fast_config(starts, 2));
    ASSERT_EQ(r.trial_seconds.size(), starts);
    for (double s : r.trial_seconds) EXPECT_GT(s, 0.0);
    EXPECT_DOUBLE_EQ(r.cpu_seconds,
                     std::accumulate(r.trial_seconds.begin(),
                                     r.trial_seconds.end(), 0.0));
    EXPECT_GE(r.wall_seconds, 0.0);
    EXPECT_GT(r.cpu_seconds, previous);
    previous = r.cpu_seconds;
  }
}

TEST(ParallelRunner, RejectsBadTrialSpecs) {
  Rng gen(2);
  const Graph g = make_gnp(60, 0.1, gen);
  const Graph graphs[] = {g};
  const TrialSpec bad[] = {{3, Method::kKl, 0}};
  EXPECT_THROW(run_trials(graphs, bad, RunConfig{}, 1, 1),
               std::out_of_range);
  const Method methods[] = {Method::kKl};
  RunConfig zero;
  zero.starts = 0;
  EXPECT_THROW(run_trial_matrix(graphs, methods, zero, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace gbis
