// Tests for component packing on disconnected graphs.
#include <vector>

#include <gtest/gtest.h>

#include "gbis/baseline/component_pack.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(ComponentPack, PerfectPackingGivesZeroCut) {
  // Cycles of sizes 4, 6, 10: {4, 6} packs to 10 = n/2.
  const std::uint32_t sizes[] = {4, 6, 10};
  const Graph g = make_union_of_cycles(sizes);
  Rng rng(1);
  const Bisection b = component_pack_bisection(g, rng);
  EXPECT_EQ(b.cut(), 0);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_TRUE(pack_components(g, rng).perfect);
}

TEST(ComponentPack, ImperfectPackingStaysBalancedAndSmall) {
  // Sizes 3, 3, 4 (n/2 = 5): no perfect packing; one donor cycle gets
  // carved (cut <= 2 since the chunk is a BFS arc of a cycle).
  const std::uint32_t sizes[] = {3, 3, 4};
  const Graph g = make_union_of_cycles(sizes);
  Rng rng(2);
  const ComponentPacking packing = pack_components(g, rng);
  EXPECT_FALSE(packing.perfect);
  const Bisection b(g, packing.sides);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_LE(b.cut(), 2);
}

TEST(ComponentPack, ConnectedGraphDegeneratesToRegionGrowth) {
  const Graph g = make_grid(6, 6);
  Rng rng(3);
  const Bisection b = component_pack_bisection(g, rng);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_GT(b.cut(), 0);  // must cut something
}

TEST(ComponentPack, TrivialInputs) {
  Rng rng(4);
  GraphBuilder empty(0);
  EXPECT_TRUE(pack_components(empty.build(), rng).perfect);
  const Graph single = make_path(1);
  EXPECT_TRUE(pack_components(single, rng).perfect);
  GraphBuilder isolated(6);  // 6 isolated vertices: trivially packable
  const Bisection b = component_pack_bisection(isolated.build(), rng);
  EXPECT_EQ(b.cut(), 0);
  EXPECT_TRUE(b.is_balanced());
}

TEST(ComponentPack, SeedsKlBetterThanRandomOnDisconnectedGraphs) {
  // Two disjoint planted communities of unequal size: packing puts
  // whole components aside, KL finishes inside the donor. Average over
  // seeds to keep it robust.
  Rng rng(5);
  GraphBuilder builder(60);
  auto clique = [&](Vertex base, std::uint32_t m) {
    for (Vertex u = 0; u < m; ++u) {
      for (Vertex v = u + 1; v < m; ++v) builder.add_edge(base + u, base + v);
    }
  };
  clique(0, 25);
  clique(25, 35);
  const Graph g = builder.build();

  Bisection seeded = component_pack_bisection(g, rng);
  kl_refine(seeded);
  Bisection plain = Bisection::random(g, rng);
  kl_refine(plain);
  EXPECT_LE(seeded.cut(), plain.cut());
  EXPECT_TRUE(seeded.is_balanced());
}

}  // namespace
}  // namespace gbis
