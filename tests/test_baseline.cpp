// Tests for the baseline bisectors: random, greedy region growing, and
// spectral.
#include <stdexcept>

#include <gtest/gtest.h>

#include "gbis/baseline/greedy.hpp"
#include "gbis/baseline/random_bisect.hpp"
#include "gbis/baseline/spectral.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(RandomBaseline, BestOfTrialsIsMonotone) {
  Rng rng(1);
  const Graph g = make_gnp(60, 0.1, rng);
  Rng rng_a(2), rng_b(2);
  const Weight one = best_random_bisection(g, rng_a, 1).cut();
  const Weight twenty = best_random_bisection(g, rng_b, 20).cut();
  EXPECT_LE(twenty, one + 0);  // same stream start, strictly more trials
  EXPECT_THROW(best_random_bisection(g, rng, 0), std::invalid_argument);
}

TEST(RandomBaseline, ExpectedCutFormula) {
  // K4: every balanced split cuts exactly 4 of the 6 edges; the formula
  // must give exactly 4.
  const Graph g = make_complete(4);
  EXPECT_DOUBLE_EQ(expected_random_cut(g), 4.0);
  // Single edge on 2 vertices always crosses.
  EXPECT_DOUBLE_EQ(expected_random_cut(make_path(2)), 1.0);
  EXPECT_DOUBLE_EQ(expected_random_cut(Graph{}), 0.0);
}

TEST(RandomBaseline, EmpiricalMatchesExpectation) {
  Rng rng(3);
  const Graph g = make_gnp(40, 0.2, rng);
  const double expected = expected_random_cut(g);
  double total = 0.0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    total += static_cast<double>(Bisection::random(g, rng).cut());
  }
  EXPECT_NEAR(total / kTrials, expected, expected * 0.08);
}

TEST(Greedy, NearExactOnPath) {
  Rng rng(4);
  const Graph g = make_path(50);
  const Bisection b = greedy_bisection(g, rng);
  EXPECT_TRUE(b.is_balanced());
  // The grown region is one contiguous interval: cut 1 if the seed was
  // near an end, 2 if it grew from the middle.
  EXPECT_LE(b.cut(), 2);
}

TEST(Greedy, NearOptimalOnLadder) {
  Rng rng(5);
  const Graph g = make_ladder(40);
  const Bisection b = greedy_bisection(g, rng);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_LE(b.cut(), 4);  // optimum 2; BFS-ball growth costs at most 2 more
}

TEST(Greedy, HandlesDisconnectedGraphs) {
  Rng rng(6);
  GraphBuilder builder(20);
  for (Vertex v = 0; v < 9; ++v) builder.add_edge(v, v + 1);        // path A
  for (Vertex v = 10; v < 19; ++v) builder.add_edge(v, v + 1);      // path B
  const Graph g = builder.build();
  const Bisection b = greedy_bisection(g, rng);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_LE(b.cut(), 2);
}

TEST(Greedy, EdgelessAndTiny) {
  Rng rng(7);
  GraphBuilder builder(7);
  const Graph g = builder.build();
  const Bisection b = greedy_bisection(g, rng);
  EXPECT_LE(b.count_imbalance(), 1u);
  EXPECT_EQ(b.cut(), 0);

  GraphBuilder empty(0);
  const Graph g0 = empty.build();
  const Bisection b0 = greedy_bisection(g0, rng);
  EXPECT_EQ(b0.cut(), 0);
}

TEST(Spectral, ExactOnWellSeparatedPlanted) {
  Rng rng(8);
  const PlantedParams params{80, 0.5, 0.5, 3};
  const Graph g = make_planted(params, rng);
  const Bisection b = spectral_bisection(g, rng);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_EQ(b.cut(), 3);  // planted cut recovered
}

TEST(Spectral, GoodOnGrid) {
  Rng rng(9);
  const Graph g = make_grid(8, 8);
  const Bisection b = spectral_bisection(g, rng);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_LE(b.cut(), 12);  // optimum 8; spectral stays in range
}

TEST(Spectral, ExactOnPath) {
  Rng rng(10);
  const Graph g = make_path(64);
  const Bisection b = spectral_bisection(g, rng);
  EXPECT_EQ(b.cut(), 1);
}

TEST(Spectral, TinyGraphs) {
  Rng rng(11);
  const Graph g1 = make_path(1);
  EXPECT_EQ(spectral_bisection(g1, rng).cut(), 0);
  const Graph g2 = make_path(2);
  EXPECT_EQ(spectral_bisection(g2, rng).cut(), 1);
}

TEST(Spectral, WeightedGraphSeparatesHeavyBlocks) {
  // Two heavy cliques with a light bridge.
  GraphBuilder builder(8);
  for (Vertex u = 0; u < 4; ++u) {
    for (Vertex v = u + 1; v < 4; ++v) {
      builder.add_edge(u, v, 20);
      builder.add_edge(u + 4, v + 4, 20);
    }
  }
  builder.add_edge(3, 4);
  const Graph g = builder.build();
  Rng rng(12);
  const Bisection b = spectral_bisection(g, rng);
  EXPECT_EQ(b.cut(), 1);
}

}  // namespace
}  // namespace gbis
