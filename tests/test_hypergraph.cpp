// Unit and property tests for the hypergraph substrate: builder
// semantics, dual-CSR invariants, and the HyperBisection state.
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/hypergraph/builder.hpp"
#include "gbis/hypergraph/hyper_bisection.hpp"
#include "gbis/hypergraph/hypergraph.hpp"
#include "gbis/hypergraph/netlist_gen.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

Hypergraph sample() {
  // 5 cells, nets: {0,1,2}, {2,3}, {0,3,4}.
  HypergraphBuilder b(5);
  b.add_net(std::vector<Cell>{0, 1, 2});
  b.add_net(std::vector<Cell>{2, 3});
  b.add_net(std::vector<Cell>{0, 3, 4});
  return b.build();
}

TEST(Hypergraph, BasicShape) {
  const Hypergraph h = sample();
  EXPECT_EQ(h.num_cells(), 5u);
  EXPECT_EQ(h.num_nets(), 3u);
  EXPECT_EQ(h.num_pins(), 8u);
  EXPECT_TRUE(h.validate());
  EXPECT_EQ(h.net_size(0), 3u);
  EXPECT_EQ(h.net_size(1), 2u);
  EXPECT_EQ(h.cell_degree(0), 2u);
  EXPECT_EQ(h.cell_degree(4), 1u);
  EXPECT_DOUBLE_EQ(h.average_net_size(), 8.0 / 3.0);
}

TEST(Hypergraph, PinAndMembershipListsSorted) {
  const Hypergraph h = sample();
  const auto pins = h.pins(2);  // net {0,3,4}
  EXPECT_EQ(pins[0], 0u);
  EXPECT_EQ(pins[1], 3u);
  EXPECT_EQ(pins[2], 4u);
  const auto nets = h.nets_of(3);  // nets 1 and 2
  EXPECT_EQ(nets[0], 1u);
  EXPECT_EQ(nets[1], 2u);
}

TEST(Hypergraph, EmptyHypergraph) {
  const Hypergraph h;
  EXPECT_EQ(h.num_cells(), 0u);
  EXPECT_EQ(h.num_nets(), 0u);
  EXPECT_TRUE(h.validate());
}

TEST(HypergraphBuilder, DuplicatePinsMerge) {
  HypergraphBuilder b(4);
  EXPECT_TRUE(b.add_net(std::vector<Cell>{1, 3, 1, 3, 2}));
  const Hypergraph h = b.build();
  EXPECT_EQ(h.net_size(0), 3u);
}

TEST(HypergraphBuilder, TrivialNetsDropped) {
  HypergraphBuilder b(4);
  EXPECT_FALSE(b.add_net(std::vector<Cell>{2}));
  EXPECT_FALSE(b.add_net(std::vector<Cell>{2, 2, 2}));
  EXPECT_EQ(b.build().num_nets(), 0u);
}

TEST(HypergraphBuilder, RejectsBadInput) {
  HypergraphBuilder b(3);
  EXPECT_THROW(b.add_net(std::vector<Cell>{0, 9}), std::invalid_argument);
  EXPECT_THROW(b.add_net(std::vector<Cell>{0, 1}, 0), std::invalid_argument);
  EXPECT_THROW(b.set_cell_weight(7, 1), std::invalid_argument);
  EXPECT_THROW(b.set_cell_weight(0, 0), std::invalid_argument);
}

TEST(HypergraphBuilder, WeightsCarryThrough) {
  HypergraphBuilder b(3);
  b.add_net(std::vector<Cell>{0, 1}, 5);
  b.set_cell_weight(2, 7);
  const Hypergraph h = b.build();
  EXPECT_EQ(h.net_weight(0), 5);
  EXPECT_EQ(h.cell_weight(2), 7);
  EXPECT_EQ(h.total_net_weight(), 5);
  EXPECT_EQ(h.total_cell_weight(), 9);
  EXPECT_TRUE(h.validate());
}

TEST(HyperBisection, CutCountsSpanningNets) {
  const Hypergraph h = sample();
  // Sides {0,1} vs {2,3,4}: net0 {0,1,2} spans, net1 {2,3} doesn't,
  // net2 {0,3,4} spans.
  HyperBisection b(h, {0, 0, 1, 1, 1});
  EXPECT_EQ(b.cut(), 2);
  EXPECT_EQ(b.recompute_cut(), 2);
  EXPECT_EQ(b.pins_on_side(0, 0), 2u);
  EXPECT_EQ(b.pins_on_side(0, 1), 1u);
  EXPECT_TRUE(b.validate());
}

TEST(HyperBisection, RejectsBadSides) {
  const Hypergraph h = sample();
  EXPECT_THROW(HyperBisection(h, {0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(HyperBisection(h, {0, 0, 1, 1, 2}), std::invalid_argument);
}

TEST(HyperBisection, GainMatchesDefinition) {
  const Hypergraph h = sample();
  HyperBisection b(h, {0, 0, 1, 1, 1});
  // Moving cell 2 to side 0: net0 becomes uncut (+1), net1 becomes cut
  // (-1): gain 0.
  EXPECT_EQ(b.gain(2), 0);
  // Moving cell 1 to side 1: net0 stays cut (phi becomes 1/2): gain 0.
  EXPECT_EQ(b.gain(1), 0);
  // Moving cell 4 to side 0: net2 {0,3,4} still spans (3 remains): 0.
  EXPECT_EQ(b.gain(4), 0);
  // Moving cell 3 to side 0: net1 {2,3} becomes cut (-1), net2 {0,3,4}
  // still spans: -1.
  EXPECT_EQ(b.gain(3), -1);
}

TEST(HyperBisection, MoveMatchesGain) {
  const Hypergraph h = sample();
  HyperBisection b(h, {0, 1, 1, 0, 0});
  for (Cell c = 0; c < 5; ++c) {
    HyperBisection copy = b;
    const Weight gain = copy.gain(c);
    const Weight before = copy.cut();
    copy.move(c);
    EXPECT_EQ(copy.cut(), before - gain) << "cell " << c;
    EXPECT_TRUE(copy.validate());
  }
}

TEST(HyperBisection, RandomIsBalanced) {
  Rng rng(1);
  const NetlistParams params{101, 150, 1.0};
  const Hypergraph h = make_random_netlist(params, rng);
  const HyperBisection b = HyperBisection::random(h, rng);
  EXPECT_LE(b.count_imbalance(), 1u);
  EXPECT_TRUE(b.validate());
}

class HyperMoveProperty : public testing::TestWithParam<std::uint32_t> {};

TEST_P(HyperMoveProperty, IncrementalCutAlwaysConsistent) {
  const std::uint32_t cells = GetParam();
  Rng rng(cells * 7 + 3);
  const NetlistParams params{cells, cells * 3 / 2, 1.5};
  const Hypergraph h = make_random_netlist(params, rng);
  HyperBisection b = HyperBisection::random(h, rng);
  for (int step = 0; step < 150; ++step) {
    const auto c = static_cast<Cell>(rng.below(cells));
    const Weight gain = b.gain(c);
    const Weight before = b.cut();
    b.move(c);
    ASSERT_EQ(b.cut(), before - gain) << "step " << step;
    ASSERT_EQ(b.cut(), b.recompute_cut()) << "step " << step;
  }
  EXPECT_TRUE(b.validate());
}

INSTANTIATE_TEST_SUITE_P(Sizes, HyperMoveProperty,
                         testing::Values(10u, 25u, 60u, 128u));

}  // namespace
}  // namespace gbis
