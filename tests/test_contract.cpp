// Tests for edge contraction (compaction step 2) and projection
// (step 4): weight conservation, cut preservation, degree growth.
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/core/contract.hpp"
#include "gbis/core/matching.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(Contract, SingleEdgeCollapse) {
  const Graph g = make_path(2);
  Rng rng(1);
  const Contraction c = contract_matching(g, {{0, 1}}, rng);
  EXPECT_EQ(c.coarse.num_vertices(), 1u);
  EXPECT_EQ(c.coarse.num_edges(), 0u);
  EXPECT_EQ(c.coarse.vertex_weight(0), 2);
  EXPECT_EQ(c.map[0], c.map[1]);
}

TEST(Contract, TrianglePlusMatchingEdge) {
  // Triangle 0-1-2; contract (0,1): coarse has 2 vertices joined by an
  // edge of weight 2 (the two former triangle sides merge).
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 0);
  const Graph g = builder.build();
  Rng rng(2);
  const Contraction c = contract_matching(g, {{0, 1}}, rng,
                                          /*pair_leftovers=*/false);
  EXPECT_EQ(c.coarse.num_vertices(), 2u);
  EXPECT_EQ(c.coarse.num_edges(), 1u);
  EXPECT_EQ(c.coarse.total_edge_weight(), 2);
  EXPECT_EQ(c.coarse.total_vertex_weight(), 3);
}

TEST(Contract, VertexWeightConservation) {
  Rng rng(3);
  const Graph g = make_gnp(50, 0.1, rng);
  const Matching m = maximal_matching(g, rng);
  const Contraction c = contract_matching(g, m, rng);
  EXPECT_EQ(c.coarse.total_vertex_weight(), g.total_vertex_weight());
  EXPECT_TRUE(c.coarse.validate());
}

TEST(Contract, PairLeftoversGivesUniformWeightTwo) {
  Rng rng(4);
  // A star: the matching has one edge, leaving many leftovers.
  GraphBuilder builder(9);
  for (Vertex v = 1; v < 9; ++v) builder.add_edge(0, v);
  const Graph g = builder.build();
  const Matching m = maximal_matching(g, rng);
  ASSERT_EQ(m.size(), 1u);
  const Contraction c = contract_matching(g, m, rng);
  // 9 vertices -> 4 weight-2 supernodes + 1 weight-1 singleton.
  EXPECT_EQ(c.coarse.num_vertices(), 5u);
  int weight_one = 0;
  for (Vertex v = 0; v < c.coarse.num_vertices(); ++v) {
    const Weight w = c.coarse.vertex_weight(v);
    EXPECT_TRUE(w == 1 || w == 2);
    weight_one += (w == 1);
  }
  EXPECT_EQ(weight_one, 1);
}

TEST(Contract, NoPairLeftoversKeepsSingletons) {
  Rng rng(5);
  GraphBuilder builder(5);
  builder.add_edge(0, 1);
  const Graph g = builder.build();
  const Contraction c =
      contract_matching(g, {{0, 1}}, rng, /*pair_leftovers=*/false);
  EXPECT_EQ(c.coarse.num_vertices(), 4u);  // 1 pair + 3 singletons
}

TEST(Contract, RejectsNonMatching) {
  const Graph g = make_path(4);
  Rng rng(6);
  EXPECT_THROW(contract_matching(g, {{0, 2}}, rng), std::invalid_argument);
  EXPECT_THROW(contract_matching(g, {{0, 1}, {1, 2}}, rng),
               std::invalid_argument);
}

TEST(Contract, ProjectSizeMismatchThrows) {
  const Graph g = make_path(4);
  Rng rng(7);
  const Contraction c = contract_matching(g, {{0, 1}, {2, 3}}, rng);
  const std::vector<std::uint8_t> wrong(3, 0);
  EXPECT_THROW(c.project(wrong), std::invalid_argument);
}

TEST(Contract, AverageDegreeGrows) {
  // Section V: "This method will cause the average degree of the graph
  // G' to be larger than the average degree of G." Check on a sparse
  // random regular graph (the paper's target family).
  Rng rng(8);
  const Graph g = make_regular_planted({400, 8, 3}, rng);
  const Matching m = maximal_matching(g, rng);
  const Contraction c = contract_matching(g, m, rng);
  EXPECT_GT(c.coarse.average_degree(), g.average_degree());
}

// The pivotal invariant: for any coarse side assignment, the coarse cut
// equals the fine cut of the projection — swept across random graphs.
class ContractProperty : public testing::TestWithParam<std::uint32_t> {};

TEST_P(ContractProperty, ProjectionPreservesCut) {
  const std::uint32_t n = GetParam();
  Rng rng(n * 37 + 11);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = make_gnp(n, 5.0 / n, rng);
    const Matching m = maximal_matching(g, rng);
    const Contraction c = contract_matching(g, m, rng);
    const Bisection coarse = Bisection::random(c.coarse, rng);
    const Bisection fine(g, c.project(coarse.sides()));
    ASSERT_EQ(coarse.cut(), fine.cut()) << "n=" << n << " trial=" << trial;
    // Weight balance transfers exactly as well.
    ASSERT_EQ(coarse.side_weight(0), fine.side_weight(0));
    ASSERT_EQ(coarse.side_weight(1), fine.side_weight(1));
  }
}

TEST_P(ContractProperty, MapIsAValidPartitionIntoPairs) {
  const std::uint32_t n = GetParam();
  Rng rng(n * 41 + 13);
  const Graph g = make_gnp(n, 5.0 / n, rng);
  const Matching m = maximal_matching(g, rng);
  const Contraction c = contract_matching(g, m, rng);
  std::vector<int> members(c.coarse.num_vertices(), 0);
  for (Vertex v = 0; v < n; ++v) {
    ASSERT_LT(c.map[v], c.coarse.num_vertices());
    ++members[c.map[v]];
  }
  int singles = 0;
  for (std::size_t s = 0; s < members.size(); ++s) {
    EXPECT_TRUE(members[s] == 1 || members[s] == 2);
    singles += (members[s] == 1);
    EXPECT_EQ(c.coarse.vertex_weight(static_cast<Vertex>(s)), members[s]);
  }
  EXPECT_EQ(singles, static_cast<int>(n % 2));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ContractProperty,
                         testing::Values(9u, 20u, 51u, 100u, 250u));

TEST(Contract, DoubleContractionWeights) {
  // Two rounds of contraction: weights become 4 (multilevel invariant).
  Rng rng(9);
  const Graph g = make_grid(8, 8);
  const Matching m1 = maximal_matching(g, rng);
  const Contraction c1 = contract_matching(g, m1, rng);
  const Matching m2 = maximal_matching(c1.coarse, rng);
  const Contraction c2 = contract_matching(c1.coarse, m2, rng);
  EXPECT_EQ(c2.coarse.total_vertex_weight(), 64);
  for (Vertex v = 0; v < c2.coarse.num_vertices(); ++v) {
    EXPECT_EQ(c2.coarse.vertex_weight(v), 4);
  }
}

}  // namespace
}  // namespace gbis
