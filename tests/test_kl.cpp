// Tests for the Kernighan-Lin implementation: invariants (balance
// preserved, cut never worsens), optimality on small instances, and the
// paper's known failure modes.
#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/exact/brute.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(Kl, NeverWorsensAndKeepsBalance) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = make_gnp(60, 0.1, rng);
    Bisection b = Bisection::random(g, rng);
    const Weight before = b.cut();
    const KlStats stats = kl_refine(b);
    EXPECT_LE(b.cut(), before);
    EXPECT_TRUE(b.is_balanced());
    EXPECT_EQ(b.cut(), b.recompute_cut());
    EXPECT_EQ(stats.final_cut, b.cut());
    EXPECT_EQ(stats.initial_cut, before);
    EXPECT_GE(stats.passes, 1u);
  }
}

TEST(Kl, SolvesSmallInstancesOptimally) {
  // KL is a heuristic, but with a couple of random restarts it should
  // hit the optimum on tiny, well-separated instances.
  Rng rng(2);
  const PlantedParams params{16, 0.9, 0.9, 2};
  const Graph g = make_planted(params, rng);
  const Weight optimal = brute_force_bisection(g).cut;
  Weight best = std::numeric_limits<Weight>::max();
  for (int start = 0; start < 5; ++start) {
    Bisection b = Bisection::random(g, rng);
    kl_refine(b);
    best = std::min(best, b.cut());
  }
  EXPECT_EQ(best, optimal);
}

TEST(Kl, RecoversPlantedBisectionOnDenseRegular) {
  // Observation 1 territory: degree >= 4 regular planted graphs are
  // where KL reliably finds the planted cut.
  Rng rng(3);
  const RegularPlantedParams params{200, 4, 5};
  const Graph g = make_regular_planted(params, rng);
  Weight best = std::numeric_limits<Weight>::max();
  for (int start = 0; start < 3; ++start) {
    Bisection b = Bisection::random(g, rng);
    kl_refine(b);
    best = std::min(best, b.cut());
  }
  EXPECT_EQ(best, 4);
}

TEST(Kl, SinglePassImprovesBadStart) {
  // Planted graph with an adversarial start: one pass must improve.
  Rng rng(4);
  const PlantedParams params{40, 0.8, 0.8, 4};
  const Graph g = make_planted(params, rng);
  // Worst-case start: interleaved sides.
  std::vector<std::uint8_t> sides(40);
  for (int v = 0; v < 40; ++v) sides[v] = static_cast<std::uint8_t>(v % 2);
  Bisection b(g, std::move(sides));
  const Weight before = b.cut();
  const Weight improvement = kl_pass(b);
  EXPECT_GT(improvement, 0);
  EXPECT_EQ(b.cut(), before - improvement);
}

TEST(Kl, FixpointOnOptimalStart) {
  // Starting at the planted (optimal) cut of a well-separated instance,
  // KL must not move away.
  Rng rng(5);
  const PlantedParams params{60, 0.7, 0.7, 1};
  const Graph g = make_planted(params, rng);
  Bisection b = Bisection::planted(g);
  kl_refine(b);
  EXPECT_EQ(b.cut(), 1);
}

TEST(Kl, HandlesEdgelessGraph) {
  Rng rng(6);
  GraphBuilder builder(10);
  const Graph g = builder.build();
  Bisection b = Bisection::random(g, rng);
  const KlStats stats = kl_refine(b);
  EXPECT_EQ(b.cut(), 0);
  EXPECT_EQ(stats.final_cut, 0);
}

TEST(Kl, HandlesTinyGraphs) {
  Rng rng(7);
  const Graph g = make_path(2);
  Bisection b = Bisection::random(g, rng);
  kl_refine(b);
  EXPECT_EQ(b.cut(), 1);  // the single edge must cross
  const Graph g1 = make_path(1);
  Bisection b1 = Bisection::random(g1, rng);
  kl_refine(b1);  // must not crash
}

TEST(Kl, MaxPassesRespected) {
  Rng rng(8);
  const Graph g = make_gnp(100, 0.08, rng);
  Bisection b = Bisection::random(g, rng);
  KlOptions options;
  options.max_passes = 1;
  const KlStats stats = kl_refine(b, options);
  EXPECT_EQ(stats.passes, 1u);
}

TEST(Kl, WeightedGraphRespectsWeights) {
  // Two heavy cliques joined by light edges: KL from any start should
  // find the 2-cut that splits between the cliques.
  GraphBuilder builder(8);
  for (Vertex u = 0; u < 4; ++u) {
    for (Vertex v = u + 1; v < 4; ++v) {
      builder.add_edge(u, v, 10);
      builder.add_edge(u + 4, v + 4, 10);
    }
  }
  builder.add_edge(0, 4);
  builder.add_edge(1, 5);
  const Graph g = builder.build();
  Rng rng(9);
  Weight best = std::numeric_limits<Weight>::max();
  for (int s = 0; s < 3; ++s) {
    Bisection b = Bisection::random(g, rng);
    kl_refine(b);
    best = std::min(best, b.cut());
  }
  EXPECT_EQ(best, 2);
}

TEST(Kl, LadderIsAKnownHardCase) {
  // Section I: KL "is known to fail badly on certain types of graphs
  // (e.g., the ladder graph)". From a random start on a long ladder it
  // usually lands above the optimal cut of 2. We only assert the soft
  // fact that it stays legal and does not crash, plus that the final
  // cut is at least optimal.
  Rng rng(10);
  const Graph g = make_ladder(100);
  Bisection b = Bisection::random(g, rng);
  kl_refine(b);
  EXPECT_GE(b.cut(), 2);
  EXPECT_TRUE(b.is_balanced());
}

TEST(Kl, OddVertexCount) {
  Rng rng(11);
  const Graph g = make_gnp(31, 0.2, rng);
  Bisection b = Bisection::random(g, rng);
  kl_refine(b);
  EXPECT_LE(b.count_imbalance(), 1u);
  EXPECT_EQ(b.cut(), b.recompute_cut());
}

TEST(Kl, StatsAccumulateAcrossPasses) {
  Rng rng(12);
  const Graph g = make_gnp(80, 0.1, rng);
  Bisection b = Bisection::random(g, rng);
  const KlStats stats = kl_refine(b);
  EXPECT_GE(stats.pairs_selected, stats.pairs_swapped);
  EXPECT_GT(stats.candidates_scanned, 0u);
}

// Property sweep: on random planted instances of growing size, KL from
// two starts never ends above the planted cut by more than the planted
// cut itself... too strong; assert legality + monotone improvement.
class KlProperty : public testing::TestWithParam<std::uint32_t> {};

TEST_P(KlProperty, LegalAndMonotone) {
  const std::uint32_t n = GetParam();
  Rng rng(n * 13 + 5);
  const Graph g = make_gnp(n, 5.0 / n, rng);
  Bisection b = Bisection::random(g, rng);
  Weight last = b.cut();
  for (int pass = 0; pass < 4; ++pass) {
    const Weight improvement = kl_pass(b);
    EXPECT_GE(improvement, 0);
    EXPECT_EQ(b.cut(), last - improvement);
    EXPECT_TRUE(b.is_balanced());
    ASSERT_EQ(b.cut(), b.recompute_cut());
    last = b.cut();
    if (improvement == 0) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KlProperty,
                         testing::Values(20u, 50u, 101u, 200u, 400u));

}  // namespace
}  // namespace gbis
