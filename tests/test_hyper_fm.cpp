// Tests for Fiduccia-Mattheyses on hypergraphs: invariants, optimality
// on planted netlists, and agreement with exhaustive search on tiny
// instances.
#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/hypergraph/builder.hpp"
#include "gbis/hypergraph/fm_hyper.hpp"
#include "gbis/hypergraph/netlist_gen.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

/// Exhaustive minimum balanced net cut for tiny hypergraphs.
Weight brute_net_cut(const Hypergraph& h) {
  const std::uint32_t n = h.num_cells();
  const std::uint32_t k = n / 2;
  Weight best = std::numeric_limits<Weight>::max();
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<std::uint32_t>(__builtin_popcount(mask)) != k) continue;
    std::vector<std::uint8_t> sides(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      sides[v] = static_cast<std::uint8_t>((mask >> v) & 1u);
    }
    best = std::min(best, HyperBisection(h, std::move(sides)).cut());
  }
  return best;
}

TEST(HyperFm, NeverWorsensAndKeepsBalance) {
  Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    const NetlistParams params{60, 90, 1.0};
    const Hypergraph h = make_random_netlist(params, rng);
    HyperBisection b = HyperBisection::random(h, rng);
    const Weight before = b.cut();
    const HyperFmStats stats = hyper_fm_refine(b);
    EXPECT_LE(b.cut(), before);
    EXPECT_LE(b.count_imbalance(), 1u);
    EXPECT_EQ(b.cut(), b.recompute_cut());
    EXPECT_EQ(stats.final_cut, b.cut());
    EXPECT_GE(stats.passes, 1u);
  }
}

TEST(HyperFm, MatchesBruteForceOnTinyNetlists) {
  Rng rng(2);
  for (int trial = 0; trial < 12; ++trial) {
    const NetlistParams params{10, 14, 1.0};
    const Hypergraph h = make_random_netlist(params, rng);
    const Weight optimal = brute_net_cut(h);
    Weight best = std::numeric_limits<Weight>::max();
    for (int start = 0; start < 6; ++start) {
      HyperBisection b = HyperBisection::random(h, rng);
      hyper_fm_refine(b);
      best = std::min(best, b.cut());
    }
    EXPECT_GE(best, optimal) << "trial " << trial;   // sanity
    EXPECT_LE(best, optimal + 1) << "trial " << trial;
  }
}

TEST(HyperFm, RecoversPlantedNetlistCut) {
  Rng rng(3);
  const NetlistParams params{400, 600, 1.0};
  const Hypergraph h = make_planted_netlist(params, 12, rng);
  Weight best = std::numeric_limits<Weight>::max();
  for (int start = 0; start < 2; ++start) {
    HyperBisection b = HyperBisection::random(h, rng);
    hyper_fm_refine(b);
    best = std::min(best, b.cut());
  }
  EXPECT_LE(best, 12 + 6);  // at or near the planted cross-net count
}

TEST(HyperFm, RejectsImbalancedInput) {
  Rng rng(4);
  const NetlistParams params{20, 30, 1.0};
  const Hypergraph h = make_random_netlist(params, rng);
  HyperBisection b(h, std::vector<std::uint8_t>(20, 0));
  EXPECT_THROW(hyper_fm_refine(b), std::invalid_argument);
}

TEST(HyperFm, MaxPassesRespected) {
  Rng rng(5);
  const NetlistParams params{80, 120, 1.0};
  const Hypergraph h = make_random_netlist(params, rng);
  HyperBisection b = HyperBisection::random(h, rng);
  HyperFmOptions options;
  options.max_passes = 1;
  EXPECT_EQ(hyper_fm_refine(b, options).passes, 1u);
}

TEST(HyperFm, WeightedNetsRespected) {
  // Heavy 2-pin nets pair cells (0,1), (2,3), (4,5), (6,7); unit nets
  // chain the pairs. Optimal cut crosses only unit nets.
  HypergraphBuilder builder(8);
  for (Cell c = 0; c < 8; c += 2) {
    builder.add_net(std::vector<Cell>{c, static_cast<Cell>(c + 1)}, 50);
  }
  builder.add_net(std::vector<Cell>{0, 2});
  builder.add_net(std::vector<Cell>{4, 6});
  builder.add_net(std::vector<Cell>{1, 5});
  const Hypergraph h = builder.build();
  Rng rng(6);
  Weight best = std::numeric_limits<Weight>::max();
  for (int s = 0; s < 6; ++s) {
    HyperBisection b = HyperBisection::random(h, rng);
    hyper_fm_refine(b);
    best = std::min(best, b.cut());
  }
  EXPECT_LE(best, 3);
}

TEST(HyperFm, WideNetsHandled) {
  // One net covering everything (always cut) plus structure: FM should
  // still find the obvious split of the 2-pin nets.
  HypergraphBuilder builder(8);
  std::vector<Cell> all;
  for (Cell c = 0; c < 8; ++c) all.push_back(c);
  builder.add_net(all, 10);
  for (Cell c = 0; c + 1 < 4; ++c) {
    builder.add_net(std::vector<Cell>{c, static_cast<Cell>(c + 1)});
    builder.add_net(
        std::vector<Cell>{static_cast<Cell>(c + 4), static_cast<Cell>(c + 5)});
  }
  const Hypergraph h = builder.build();
  Rng rng(7);
  Weight best = std::numeric_limits<Weight>::max();
  for (int s = 0; s < 4; ++s) {
    HyperBisection b = HyperBisection::random(h, rng);
    hyper_fm_refine(b);
    best = std::min(best, b.cut());
  }
  EXPECT_EQ(best, 10);  // only the all-net is cut
}

class HyperFmProperty : public testing::TestWithParam<std::uint32_t> {};

TEST_P(HyperFmProperty, LegalOnRandomNetlists) {
  const std::uint32_t cells = GetParam();
  Rng rng(cells * 11 + 1);
  const NetlistParams params{cells, cells * 3 / 2, 1.5};
  const Hypergraph h = make_random_netlist(params, rng);
  HyperBisection b = HyperBisection::random(h, rng);
  const Weight before = b.cut();
  hyper_fm_refine(b);
  EXPECT_LE(b.cut(), before);
  EXPECT_LE(b.count_imbalance(), 1u);
  ASSERT_EQ(b.cut(), b.recompute_cut());
}

INSTANTIATE_TEST_SUITE_P(Sizes, HyperFmProperty,
                         testing::Values(16u, 33u, 64u, 129u, 256u));

}  // namespace
}  // namespace gbis
