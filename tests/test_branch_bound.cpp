// Tests for the branch-and-bound exact bisection solver.
#include <stdexcept>

#include <gtest/gtest.h>

#include "gbis/exact/branch_bound.hpp"
#include "gbis/exact/brute.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(BranchBound, MatchesBruteForceOnRandomGraphs) {
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    const std::uint32_t n = 8 + static_cast<std::uint32_t>(rng.below(9));
    const Graph g = make_gnp(n, 0.3, rng);
    const ExactBisection bb = branch_bound_bisection(g);
    const ExactBisection bf = brute_force_bisection(g);
    ASSERT_EQ(bb.cut, bf.cut) << "trial " << trial << " n=" << n;
    const Bisection witness(g, bb.sides);
    EXPECT_EQ(witness.cut(), bb.cut);
    EXPECT_TRUE(witness.is_balanced());
  }
}

TEST(BranchBound, KnownOptimaOnSpecialGraphs) {
  EXPECT_EQ(branch_bound_bisection(make_path(12)).cut, 1);
  EXPECT_EQ(branch_bound_bisection(make_cycle(12)).cut, 2);
  EXPECT_EQ(branch_bound_bisection(make_ladder(8)).cut, 2);
  EXPECT_EQ(branch_bound_bisection(make_grid(4, 4)).cut, 4);
  EXPECT_EQ(branch_bound_bisection(make_complete(8)).cut, 16);
  EXPECT_EQ(branch_bound_bisection(make_hypercube(4)).cut, 8);
}

TEST(BranchBound, OddVertexCount) {
  const Graph g = make_path(11);
  const ExactBisection r = branch_bound_bisection(g);
  EXPECT_EQ(r.cut, 1);
  const Bisection witness(g, r.sides);
  EXPECT_LE(witness.count_imbalance(), 1u);
}

TEST(BranchBound, CertifiesPlantedWidthBeyondBruteForce) {
  // n = 40: out of enumeration's reach, easy for branch and bound.
  Rng rng(2);
  const RegularPlantedParams params{40, 2, 3};
  const Graph g = make_regular_planted(params, rng);
  // Seed the solver with a KL incumbent to tighten pruning.
  Bisection incumbent = Bisection::random(g, rng);
  kl_refine(incumbent);
  BranchBoundOptions options;
  options.initial_upper_bound = incumbent.cut();
  BranchBoundStats stats;
  const ExactBisection r = branch_bound_bisection(g, options, &stats);
  EXPECT_EQ(r.cut, 2);  // the planted width is optimal here
  EXPECT_GT(stats.pruned, 0u);
}

TEST(BranchBound, WeightedEdges) {
  Rng rng(3);
  const PlantedParams params{16, 0.8, 0.8, 3};
  const Graph g = make_planted(params, rng);
  EXPECT_EQ(branch_bound_bisection(g).cut, brute_force_bisection(g).cut);
}

TEST(BranchBound, RejectsOversizedGraphs) {
  EXPECT_THROW(branch_bound_bisection(make_cycle(100)),
               std::invalid_argument);
}

TEST(BranchBound, NodeCapThrows) {
  Rng rng(4);
  const Graph g = make_gnp(30, 0.4, rng);
  BranchBoundOptions options;
  options.max_nodes = 10;  // absurdly small
  EXPECT_THROW(branch_bound_bisection(g, options), std::runtime_error);
}

TEST(BranchBound, TinyGraphs) {
  GraphBuilder empty(0);
  EXPECT_EQ(branch_bound_bisection(empty.build()).cut, 0);
  EXPECT_EQ(branch_bound_bisection(make_path(2)).cut, 1);
  EXPECT_EQ(branch_bound_bisection(make_path(1)).cut, 0);
}

TEST(BranchBound, TightUpperBoundStillSolves) {
  // Passing the exact optimum as the bound must still find a witness.
  const Graph g = make_cycle(10);
  BranchBoundOptions options;
  options.initial_upper_bound = 2;
  EXPECT_EQ(branch_bound_bisection(g, options).cut, 2);
}

}  // namespace
}  // namespace gbis
