// Tests for the Fiduccia-Mattheyses refinement.
#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/exact/brute.hpp"
#include "gbis/fm/fm.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(Fm, NeverWorsensAndKeepsBalance) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = make_gnp(60, 0.1, rng);
    Bisection b = Bisection::random(g, rng);
    const Weight before = b.cut();
    const FmStats stats = fm_refine(b);
    EXPECT_LE(b.cut(), before);
    EXPECT_LE(b.count_imbalance(), 1u);
    EXPECT_EQ(b.cut(), b.recompute_cut());
    EXPECT_EQ(stats.final_cut, b.cut());
  }
}

TEST(Fm, SolvesWellSeparatedInstances) {
  Rng rng(2);
  const PlantedParams params{24, 0.9, 0.9, 2};
  const Graph g = make_planted(params, rng);
  const Weight optimal = brute_force_bisection(g).cut;
  Weight best = std::numeric_limits<Weight>::max();
  for (int start = 0; start < 5; ++start) {
    Bisection b = Bisection::random(g, rng);
    fm_refine(b);
    best = std::min(best, b.cut());
  }
  EXPECT_EQ(best, optimal);
}

TEST(Fm, RejectsImbalancedInput) {
  const Graph g = make_cycle(10);
  Bisection b(g, std::vector<std::uint8_t>(10, 0));
  EXPECT_THROW(fm_refine(b), std::invalid_argument);
}

TEST(Fm, HonorsWiderTolerance) {
  Rng rng(3);
  const Graph g = make_gnp(40, 0.15, rng);
  std::vector<std::uint8_t> sides(40, 0);
  for (int i = 0; i < 18; ++i) sides[static_cast<std::size_t>(i)] = 1;
  Bisection b(g, std::move(sides));  // imbalance 4
  FmOptions options;
  options.balance_tolerance = 4;
  fm_refine(b, options);
  EXPECT_LE(b.count_imbalance(), 4u);
}

TEST(Fm, MaxPassesRespected) {
  Rng rng(4);
  const Graph g = make_gnp(100, 0.08, rng);
  Bisection b = Bisection::random(g, rng);
  FmOptions options;
  options.max_passes = 1;
  EXPECT_EQ(fm_refine(b, options).passes, 1u);
}

TEST(Fm, EdgelessAndTiny) {
  Rng rng(5);
  GraphBuilder builder(6);
  const Graph g = builder.build();
  Bisection b = Bisection::random(g, rng);
  fm_refine(b);
  EXPECT_EQ(b.cut(), 0);

  const Graph g2 = make_path(2);
  Bisection b2 = Bisection::random(g2, rng);
  fm_refine(b2);
  EXPECT_EQ(b2.cut(), 1);
}

TEST(Fm, WeightedEdgesRespected) {
  // Four heavy pairs chained by unit edges: the optimal bisection keeps
  // every heavy pair intact and cuts only light edges.
  GraphBuilder builder(8);
  for (Vertex v = 0; v < 8; v += 2) builder.add_edge(v, v + 1, 100);
  builder.add_edge(0, 2);
  builder.add_edge(4, 6);
  builder.add_edge(1, 5);
  const Graph g = builder.build();
  Rng rng(6);
  Weight best = std::numeric_limits<Weight>::max();
  for (int s = 0; s < 6; ++s) {
    Bisection b = Bisection::random(g, rng);
    fm_refine(b);
    best = std::min(best, b.cut());
  }
  EXPECT_LE(best, 3);  // no heavy edge crosses
}

TEST(Fm, WeightBalanceMode) {
  // Vertices of weight 3/1 mixed; weight balancing must hold the
  // weight split even when counts drift.
  Rng rng(7);
  GraphBuilder builder(12);
  for (Vertex v = 0; v < 12; ++v) {
    builder.set_vertex_weight(v, v % 3 == 0 ? 3 : 1);
  }
  for (int e = 0; e < 30; ++e) {
    const auto u = static_cast<Vertex>(rng.below(12));
    const auto v = static_cast<Vertex>(rng.below(12));
    if (u != v) builder.add_edge(u, v);
  }
  const Graph g = builder.build();

  // Start from a weight-balanced split (weights: 4x3 + 8x1 = 20).
  std::vector<std::uint8_t> sides(12, 0);
  sides[0] = sides[3] = sides[6] = 1;  // 3+3+3 = 9
  sides[1] = 1;                        // +1 = 10 vs 10
  Bisection b(g, std::move(sides));
  ASSERT_EQ(b.weight_imbalance(), 0);

  FmOptions options;
  options.balance = FmBalance::kWeight;
  options.balance_tolerance = 2;
  const Weight before = b.cut();
  fm_refine(b, options);
  EXPECT_LE(b.cut(), before);
  EXPECT_LE(b.weight_imbalance(), 2);
  EXPECT_EQ(b.cut(), b.recompute_cut());
}

TEST(Fm, WeightModeRejectsWeightImbalancedInput) {
  GraphBuilder builder(4);
  builder.set_vertex_weight(0, 10);
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  const Graph g = builder.build();
  Bisection b(g, {0, 0, 1, 1});  // counts 2/2 but weights 11/2
  FmOptions options;
  options.balance = FmBalance::kWeight;
  options.balance_tolerance = 1;
  EXPECT_THROW(fm_refine(b, options), std::invalid_argument);
}

class FmProperty : public testing::TestWithParam<std::uint32_t> {};

TEST_P(FmProperty, LegalOnRandomGraphs) {
  const std::uint32_t n = GetParam();
  Rng rng(n * 17 + 1);
  const Graph g = make_gnp(n, 6.0 / n, rng);
  Bisection b = Bisection::random(g, rng);
  const Weight before = b.cut();
  fm_refine(b);
  EXPECT_LE(b.cut(), before);
  EXPECT_LE(b.count_imbalance(), 1u);
  ASSERT_EQ(b.cut(), b.recompute_cut());
}

INSTANTIATE_TEST_SUITE_P(Sizes, FmProperty,
                         testing::Values(16u, 33u, 64u, 128u, 257u));

}  // namespace
}  // namespace gbis
