// Tests for the structural analysis helpers.
#include <stdexcept>

#include <gtest/gtest.h>

#include "gbis/gen/gnp.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/analysis.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(Analysis, DegreeHistogram) {
  GraphBuilder b(4);  // star K_{1,3}
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  const auto hist = degree_histogram(b.build());
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 3u);
  EXPECT_EQ(hist[2], 0u);
  EXPECT_EQ(hist[3], 1u);
  EXPECT_TRUE(degree_histogram(Graph{}).empty());
}

TEST(Analysis, CoreNumbersOnKnownShapes) {
  // A triangle with a pendant: triangle vertices core 2, pendant 1.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  const auto cores = core_numbers(b.build());
  EXPECT_EQ(cores[0], 2u);
  EXPECT_EQ(cores[1], 2u);
  EXPECT_EQ(cores[2], 2u);
  EXPECT_EQ(cores[3], 1u);
}

TEST(Analysis, DegeneracyOfFamilies) {
  EXPECT_EQ(degeneracy(make_path(10)), 1u);       // trees are 1-degenerate
  EXPECT_EQ(degeneracy(make_binary_tree(31)), 1u);
  EXPECT_EQ(degeneracy(make_cycle(8)), 2u);
  EXPECT_EQ(degeneracy(make_grid(5, 5)), 2u);
  EXPECT_EQ(degeneracy(make_complete(6)), 5u);
}

TEST(Analysis, TriangleCount) {
  EXPECT_EQ(triangle_count(make_complete(5)), 10u);  // C(5,3)
  EXPECT_EQ(triangle_count(make_cycle(5)), 0u);
  EXPECT_EQ(triangle_count(make_grid(4, 4)), 0u);
  GraphBuilder b(4);  // two triangles sharing an edge
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  EXPECT_EQ(triangle_count(b.build()), 2u);
}

TEST(Analysis, GlobalClustering) {
  EXPECT_DOUBLE_EQ(global_clustering(make_complete(6)), 1.0);
  EXPECT_DOUBLE_EQ(global_clustering(make_cycle(8)), 0.0);
  EXPECT_DOUBLE_EQ(global_clustering(make_path(3)), 0.0);  // one wedge
  EXPECT_DOUBLE_EQ(global_clustering(Graph{}), 0.0);
}

TEST(Analysis, EccentricityAndDiameter) {
  const Graph path = make_path(10);
  EXPECT_EQ(eccentricity(path, 0), 9u);
  EXPECT_EQ(eccentricity(path, 5), 5u);
  EXPECT_EQ(pseudo_diameter(path), 9u);  // exact on trees
  EXPECT_EQ(pseudo_diameter(make_binary_tree(15)), 6u);
  EXPECT_EQ(pseudo_diameter(make_cycle(10)), 5u);
  EXPECT_THROW(pseudo_diameter(path, 99), std::out_of_range);
}

TEST(Analysis, CoreNumbersMatchBruteOnRandom) {
  // Property: the k-core invariant — every vertex with core number c
  // has >= c neighbors of core number >= c.
  Rng rng(1);
  const Graph g = make_gnp(120, 0.06, rng);
  const auto cores = core_numbers(g);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    std::uint32_t strong = 0;
    for (Vertex w : g.neighbors(v)) {
      if (cores[w] >= cores[v]) ++strong;
    }
    EXPECT_GE(strong, cores[v]) << "vertex " << v;
  }
}

}  // namespace
}  // namespace gbis
