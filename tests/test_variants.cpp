// Tests for the algorithm variants: greedy-tops KL pair selection and
// swap-neighborhood SA.
#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/exact/brute.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/sa/sa.hpp"

namespace gbis {
namespace {

TEST(KlGreedyTops, LegalAndMonotone) {
  Rng rng(1);
  KlOptions options;
  options.pair_selection = KlPairSelection::kGreedyTops;
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = make_gnp(80, 0.08, rng);
    Bisection b = Bisection::random(g, rng);
    const Weight before = b.cut();
    kl_refine(b, options);
    EXPECT_LE(b.cut(), before);
    EXPECT_TRUE(b.is_balanced());
    ASSERT_EQ(b.cut(), b.recompute_cut());
  }
}

TEST(KlGreedyTops, NeverBeatsBestPairOnAverage) {
  // The full Figure-2 scan dominates the greedy shortcut on sparse
  // planted regular graphs (this gap is the point of the variant —
  // bench/ablation_kl_selection quantifies it).
  Rng rng(2);
  double best_total = 0, greedy_total = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = make_regular_planted({400, 8, 3}, rng);
    KlOptions best_opts;
    KlOptions greedy_opts;
    greedy_opts.pair_selection = KlPairSelection::kGreedyTops;
    Weight best = std::numeric_limits<Weight>::max();
    Weight greedy = std::numeric_limits<Weight>::max();
    for (int s = 0; s < 2; ++s) {
      Bisection b1 = Bisection::random(g, rng);
      kl_refine(b1, best_opts);
      best = std::min(best, b1.cut());
      Bisection b2 = Bisection::random(g, rng);
      kl_refine(b2, greedy_opts);
      greedy = std::min(greedy, b2.cut());
    }
    best_total += static_cast<double>(best);
    greedy_total += static_cast<double>(greedy);
  }
  EXPECT_LE(best_total, greedy_total);
}

TEST(SaSwap, KeepsExactBalanceThroughout) {
  Rng rng(3);
  const Graph g = make_gnp(60, 0.1, rng);
  Bisection b = Bisection::random(g, rng);
  SaOptions options;
  options.neighborhood = SaNeighborhood::kSwap;
  options.temperature_length_factor = 4.0;
  options.cooling_ratio = 0.9;
  const Weight before = b.cut();
  const SaStats stats = sa_refine(b, rng, options);
  EXPECT_EQ(b.count_imbalance(), 0u);
  EXPECT_LE(b.cut(), before);
  EXPECT_EQ(b.cut(), b.recompute_cut());
  EXPECT_GT(stats.moves_proposed, 0u);
}

TEST(SaSwap, SolvesWellSeparatedInstances) {
  Rng rng(4);
  const PlantedParams params{24, 0.9, 0.9, 2};
  const Graph g = make_planted(params, rng);
  const Weight optimal = brute_force_bisection(g).cut;
  SaOptions options;
  options.neighborhood = SaNeighborhood::kSwap;
  options.temperature_length_factor = 4.0;
  Weight best = std::numeric_limits<Weight>::max();
  for (int start = 0; start < 3; ++start) {
    Bisection b = Bisection::random(g, rng);
    sa_refine(b, rng, options);
    best = std::min(best, b.cut());
  }
  EXPECT_EQ(best, optimal);
}

TEST(SaSwap, RepairsImbalancedStart) {
  Rng rng(5);
  const Graph g = make_gnp(30, 0.2, rng);
  std::vector<std::uint8_t> sides(30, 0);
  for (int i = 0; i < 5; ++i) sides[static_cast<std::size_t>(i)] = 1;
  Bisection b(g, std::move(sides));  // 25 vs 5
  SaOptions options;
  options.neighborhood = SaNeighborhood::kSwap;
  options.temperature_length_factor = 2.0;
  sa_refine(b, rng, options);
  EXPECT_EQ(b.count_imbalance(), 0u);  // rebalanced up front, kept exact
}

TEST(SaSwap, OddVertexCount) {
  Rng rng(6);
  const Graph g = make_gnp(31, 0.15, rng);
  Bisection b = Bisection::random(g, rng);
  SaOptions options;
  options.neighborhood = SaNeighborhood::kSwap;
  options.temperature_length_factor = 2.0;
  sa_refine(b, rng, options);
  EXPECT_LE(b.count_imbalance(), 1u);
  EXPECT_EQ(b.cut(), b.recompute_cut());
}

TEST(SaSwap, TinyGraphs) {
  Rng rng(7);
  SaOptions options;
  options.neighborhood = SaNeighborhood::kSwap;
  const Graph g = make_path(2);
  Bisection b = Bisection::random(g, rng);
  sa_refine(b, rng, options);
  EXPECT_EQ(b.cut(), 1);
  const Graph g1 = make_path(1);
  Bisection b1 = Bisection::random(g1, rng);
  sa_refine(b1, rng, options);  // must not crash or hang
}

}  // namespace
}  // namespace gbis
