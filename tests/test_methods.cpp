// Tests for the method-portfolio subsystem (src/gbis/methods/): the
// registry that makes solvers data, the Berry-Goldberg path
// optimizer's refiner contract (balance preserved, cut never worsens,
// deterministic, deadline-interruptible), the fast greedy+hill-climb
// rung, and the quality pin the ISSUE acceptance demands — path-opt
// mean cuts within 5% of KL's over the EXPERIMENTS.md graph classes.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/baseline/greedy.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/harness/runner.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/methods/greedy.hpp"
#include "gbis/methods/path_opt.hpp"
#include "gbis/methods/registry.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/util/deadline.hpp"

namespace gbis {
namespace {

// --- Registry --------------------------------------------------------------

TEST(Registry, RowsAlignWithTheMethodEnum) {
  const auto registry = method_registry();
  ASSERT_GE(registry.size(), 12u);
  for (std::size_t i = 0; i < registry.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(registry[i].method), i)
        << registry[i].name;
    // method_info must be the same row the span exposes.
    EXPECT_EQ(&method_info(registry[i].method), &registry[i]);
  }
}

TEST(Registry, NamesRoundTripThroughEveryLookupPath) {
  for (const MethodInfo& info : method_registry()) {
    // Scripting name -> registry row.
    const MethodInfo* by_name = method_info_by_name(info.name);
    ASSERT_NE(by_name, nullptr) << info.name;
    EXPECT_EQ(by_name->method, info.method);
    // Scripting name -> harness Method (what the CLI/protocol use).
    Method parsed;
    ASSERT_TRUE(method_from_name(info.name, parsed)) << info.name;
    EXPECT_EQ(parsed, info.method);
    // Display name is what responses/tables print.
    EXPECT_EQ(method_name(info.method), info.display_name);
  }
  EXPECT_EQ(method_info_by_name("no-such-method"), nullptr);
}

TEST(Registry, PathOptAndGreedyHcAreFirstClass) {
  EXPECT_EQ(std::string(method_name(Method::kPathOpt)), "PO");
  EXPECT_EQ(std::string(method_name(Method::kGreedyHc)), "GreedyHC");
  Method m;
  ASSERT_TRUE(method_from_name("path", m));
  EXPECT_EQ(m, Method::kPathOpt);
  ASSERT_TRUE(method_from_name("greedy_hc", m));
  EXPECT_EQ(m, Method::kGreedyHc);
}

TEST(Registry, QualityTierNamesRoundTrip) {
  for (const QualityTier tier : {QualityTier::kFast, QualityTier::kBalanced,
                                 QualityTier::kBest}) {
    QualityTier parsed;
    ASSERT_TRUE(quality_tier_from_name(quality_tier_name(tier), parsed));
    EXPECT_EQ(parsed, tier);
  }
  QualityTier parsed;
  EXPECT_FALSE(quality_tier_from_name("fastest", parsed));
  EXPECT_FALSE(quality_tier_from_name("", parsed));
}

TEST(Registry, BestPortfolioPreservesTheHistoricalPrefix) {
  // Pre-ladder "auto" raced CKL, CSA, KL, SA, MLKL in that order; the
  // best rung must keep that prefix exactly (budget <= 5 streams
  // replay byte-identically) and append path optimization.
  const auto best = quality_portfolio(QualityTier::kBest);
  const std::vector<Method> expected = {Method::kCkl, Method::kCsa,
                                        Method::kKl,  Method::kSa,
                                        Method::kMultilevelKl,
                                        Method::kPathOpt};
  ASSERT_EQ(best.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(best[i], expected[i]) << i;
  }
}

TEST(Registry, EveryRungPortfolioIsRegisteredAndNonEmpty) {
  for (const QualityTier tier : {QualityTier::kFast, QualityTier::kBalanced,
                                 QualityTier::kBest}) {
    const auto portfolio = quality_portfolio(tier);
    ASSERT_FALSE(portfolio.empty());
    for (const Method m : portfolio) {
      EXPECT_LT(static_cast<std::size_t>(m), method_registry().size());
    }
  }
  // The fast rung is exactly the bounded-latency construction.
  const auto fast = quality_portfolio(QualityTier::kFast);
  ASSERT_EQ(fast.size(), 1u);
  EXPECT_EQ(fast[0], Method::kGreedyHc);
}

// --- Path optimization -----------------------------------------------------

TEST(PathOpt, NeverWorsensAndKeepsBalance) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = make_gnp(80, 0.08, rng);
    Bisection b = Bisection::random(g, rng);
    const Weight before = b.cut();
    const PathOptStats stats = path_opt_refine(b);
    EXPECT_LE(b.cut(), before);
    EXPECT_TRUE(b.is_balanced());
    EXPECT_EQ(b.cut(), b.recompute_cut());
    EXPECT_EQ(stats.initial_cut, before);
    EXPECT_EQ(stats.final_cut, b.cut());
    EXPECT_GE(stats.passes, 1u);
  }
}

TEST(PathOpt, IsDeterministicForAFixedStart) {
  Rng rng(12);
  const Graph g = make_planted({200, 0.08, 0.02, 16}, rng);
  const Bisection start = Bisection::random(g, rng);
  Bisection a = start;
  Bisection b = start;
  path_opt_refine(a);
  path_opt_refine(b);
  EXPECT_EQ(a.cut(), b.cut());
  EXPECT_TRUE(std::equal(a.sides().begin(), a.sides().end(),
                         b.sides().begin()));
}

TEST(PathOpt, SinglePassReportsItsImprovement) {
  Rng rng(13);
  const Graph g = make_gnp(120, 0.06, rng);
  Bisection b = Bisection::random(g, rng);
  const Weight before = b.cut();
  PathOptStats stats;
  const Weight gain = path_opt_pass(b, &stats);
  EXPECT_EQ(gain, before - b.cut());
  EXPECT_GE(gain, 0);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_GE(stats.flips_proposed, stats.flips_applied);
}

TEST(PathOpt, MaxPassesCapsTheLoop) {
  Rng rng(14);
  const Graph g = make_gnp(150, 0.05, rng);
  Bisection b = Bisection::random(g, rng);
  PathOptOptions options;
  options.max_passes = 1;
  const PathOptStats stats = path_opt_refine(b, options);
  EXPECT_EQ(stats.passes, 1u);
}

TEST(PathOpt, ExpiredDeadlineThrowsDeadlineExceeded) {
  Rng rng(15);
  const Graph g = make_gnp(200, 0.05, rng);
  Bisection b = Bisection::random(g, rng);
  PathOptOptions options;
  options.deadline = Deadline::after(-1.0);
  EXPECT_THROW(path_opt_refine(b, options), DeadlineExceeded);
}

TEST(PathOpt, RunsThroughTheHarnessRunner) {
  Rng gen(16);
  const Graph g = make_regular_planted({200, 8, 4}, gen);
  Rng trial(99);
  const RunConfig config;
  const Bisection b = run_one_start(g, Method::kPathOpt, trial, config);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_EQ(b.cut(), b.recompute_cut());
}

// The ISSUE acceptance pin: over the EXPERIMENTS.md graph classes,
// path optimization's mean best cut stays within 5% of KL's from the
// same random starts. (Berry & Goldberg found path optimization
// *better* than KL on their geometric classes; parity is the
// conservative bound that keeps this test stable across seeds.)
TEST(PathOpt, MeanCutWithinFivePercentOfKlOnExperimentClasses) {
  struct Named {
    const char* name;
    Graph graph;
  };
  Rng gen(19890625);
  std::vector<Named> classes;
  classes.push_back({"g2set", make_planted(
      planted_params_for_degree(300, 3.0, 16), gen)});
  classes.push_back({"gnp", make_gnp(300, gnp_p_for_degree(300, 3.0), gen)});
  classes.push_back({"gbreg", make_regular_planted({300, 16, 3}, gen)});
  classes.push_back({"grid", make_grid(18, 18)});
  classes.push_back({"ladder", make_ladder(150)});

  constexpr int kStarts = 6;
  double kl_total = 0;
  double po_total = 0;
  for (const Named& c : classes) {
    double kl_sum = 0;
    double po_sum = 0;
    Rng starts(7);
    for (int s = 0; s < kStarts; ++s) {
      const Bisection start = Bisection::random(c.graph, starts);
      Bisection kl = start;
      kl_refine(kl);
      Bisection po = start;
      path_opt_refine(po);
      kl_sum += static_cast<double>(kl.cut());
      po_sum += static_cast<double>(po.cut());
    }
    kl_total += kl_sum;
    po_total += po_sum;
    // Per-class sanity: path-opt must at least be in KL's league on
    // every family, not carried by one easy class (2x is the loose
    // per-class guard; the 5% pin is on the aggregate mean).
    EXPECT_LE(po_sum, 2.0 * kl_sum + 1.0) << c.name;
  }
  EXPECT_LE(po_total, 1.05 * kl_total)
      << "path-opt mean cut " << po_total / (5 * kStarts)
      << " vs KL " << kl_total / (5 * kStarts);
}

// --- Greedy + hill climb (the fast rung) -----------------------------------

TEST(GreedyHc, BalancedValidAndNeverWorseThanPlainGreedy) {
  Rng gen(21);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = make_gnp(100, 0.06, gen);
    // Same Rng state for both: the greedy construction consumes the
    // same draws, so the hill climb starts from the identical cut.
    Rng a(1000 + trial);
    Rng b(1000 + trial);
    const Bisection plain = greedy_bisection(g, a);
    const Bisection polished = greedy_hc_bisection(g, b);
    EXPECT_TRUE(polished.is_balanced());
    EXPECT_EQ(polished.cut(), polished.recompute_cut());
    EXPECT_LE(polished.cut(), plain.cut());
  }
}

TEST(GreedyHc, IsDeterministicForAFixedSeed) {
  Rng gen(22);
  const Graph g = make_planted({150, 0.1, 0.02, 8}, gen);
  Rng a(5);
  Rng b(5);
  const Bisection x = greedy_hc_bisection(g, a);
  const Bisection y = greedy_hc_bisection(g, b);
  EXPECT_EQ(x.cut(), y.cut());
  EXPECT_TRUE(std::equal(x.sides().begin(), x.sides().end(),
                         y.sides().begin()));
}

TEST(GreedyHc, RunsThroughTheHarnessRunner) {
  Rng gen(23);
  const Graph g = make_gnp(120, 0.06, gen);
  Rng trial(7);
  const RunConfig config;
  const Bisection b = run_one_start(g, Method::kGreedyHc, trial, config);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_EQ(b.cut(), b.recompute_cut());
}

}  // namespace
}  // namespace gbis
