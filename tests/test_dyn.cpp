// Dynamic-graph subsystem suite: deterministic edit batches
// (dyn/mutation), the byte-bounded graph store (dyn/graph_store), the
// fingerprint lineage DAG (dyn/lineage), and the warm-start pipeline
// (dyn/warm). The service-level behavior of the `mutate` op lives in
// test_svc.cpp; this file pins the layer underneath it.
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/dyn/graph_store.hpp"
#include "gbis/dyn/lineage.hpp"
#include "gbis/dyn/mutation.hpp"
#include "gbis/dyn/warm.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/svc/fingerprint.hpp"
#include "gbis/util/deadline.hpp"

namespace gbis {
namespace {

Graph make_path(Vertex n) {
  GraphBuilder builder(n);
  for (Vertex v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  return builder.build();
}

MutationBatch add_edge_batch(std::uint64_t u, std::uint64_t v) {
  MutationBatch batch;
  batch.add_edges = {u, v};
  return batch;
}

// --- apply_mutation --------------------------------------------------------

TEST(Mutation, AddEdgeProducesExpectedChild) {
  const Graph parent = make_path(3);  // 0-1-2
  const MutationResult result = apply_mutation(parent, add_edge_batch(0, 2));
  EXPECT_EQ(result.child.num_vertices(), 3u);
  EXPECT_EQ(result.child.num_edges(), 3u);
  EXPECT_TRUE(result.child.has_edge(0, 2));
  // No vertex changes: the map is the identity.
  ASSERT_EQ(result.map.size(), 3u);
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(result.map[v], v);
}

TEST(Mutation, AddVerticesAppendsIsolatedWeightOne) {
  const Graph parent = make_path(2);
  MutationBatch batch;
  batch.add_vertices = 2;
  const MutationResult result = apply_mutation(parent, batch);
  ASSERT_EQ(result.child.num_vertices(), 4u);
  EXPECT_EQ(result.child.num_edges(), 1u);
  EXPECT_EQ(result.child.degree(2), 0u);
  EXPECT_EQ(result.child.vertex_weight(3), 1);
  // New ids are addressable by the same batch's edge edits.
  MutationBatch wired;
  wired.add_vertices = 1;
  wired.add_edges = {2, 0};
  const MutationResult wired_result = apply_mutation(parent, wired);
  EXPECT_TRUE(wired_result.child.has_edge(0, 2));
}

TEST(Mutation, DuplicateEdgeAddThrows) {
  const Graph parent = make_path(3);
  // Duplicate of a parent edge.
  EXPECT_THROW(apply_mutation(parent, add_edge_batch(0, 1)),
               std::invalid_argument);
  // Duplicate within the batch (either orientation).
  MutationBatch twice;
  twice.add_edges = {0, 2, 2, 0};
  EXPECT_THROW(apply_mutation(parent, twice), std::invalid_argument);
}

TEST(Mutation, SelfLoopAndOutOfRangeEndpointsThrow) {
  const Graph parent = make_path(3);
  EXPECT_THROW(apply_mutation(parent, add_edge_batch(1, 1)),
               std::invalid_argument);
  EXPECT_THROW(apply_mutation(parent, add_edge_batch(0, 3)),
               std::invalid_argument);
  MutationBatch del_oob;
  del_oob.del_edges = {0, 9};
  EXPECT_THROW(apply_mutation(parent, del_oob), std::invalid_argument);
}

TEST(Mutation, OddEdgeListThrows) {
  const Graph parent = make_path(3);
  MutationBatch odd;
  odd.add_edges = {0};
  EXPECT_THROW(apply_mutation(parent, odd), std::invalid_argument);
  MutationBatch odd_del;
  odd_del.del_edges = {0, 1, 2};
  EXPECT_THROW(apply_mutation(parent, odd_del), std::invalid_argument);
}

TEST(Mutation, DeletingNonexistentEdgeThrows) {
  const Graph parent = make_path(3);
  MutationBatch missing;
  missing.del_edges = {0, 2};  // never existed
  EXPECT_THROW(apply_mutation(parent, missing), std::invalid_argument);
  MutationBatch twice;
  twice.del_edges = {0, 1, 1, 0};  // second delete sees it gone
  EXPECT_THROW(apply_mutation(parent, twice), std::invalid_argument);
}

TEST(Mutation, DeletingBatchAddedEdgeIsANetNoop) {
  const Graph parent = make_path(3);
  MutationBatch batch;
  batch.add_edges = {0, 2};
  batch.del_edges = {2, 0};  // the batch's own edge, other orientation
  const MutationResult result = apply_mutation(parent, batch);
  EXPECT_EQ(graph_fingerprint(result.child), graph_fingerprint(parent));
  EXPECT_GT(batch.edit_distance(), 0u);  // edits happened, net zero
}

TEST(Mutation, VertexDeletionRenumbersCompactly) {
  const Graph parent = make_path(4);  // 0-1-2-3
  MutationBatch batch;
  batch.del_vertices = {1};
  const MutationResult result = apply_mutation(parent, batch);
  ASSERT_EQ(result.child.num_vertices(), 3u);
  // Survivors renumber in ascending old-id order: 0->0, 2->1, 3->2.
  ASSERT_EQ(result.map.size(), 4u);
  EXPECT_EQ(result.map[0], 0u);
  EXPECT_EQ(result.map[1], kDeletedVertex);
  EXPECT_EQ(result.map[2], 1u);
  EXPECT_EQ(result.map[3], 2u);
  // Incident edges (0,1) and (1,2) vanish; (2,3) survives as (1,2).
  EXPECT_EQ(result.child.num_edges(), 1u);
  EXPECT_TRUE(result.child.has_edge(1, 2));
}

TEST(Mutation, VertexDeletionPreservesSurvivorWeights) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.set_vertex_weight(2, 7);
  const Graph parent = builder.build();
  MutationBatch batch;
  batch.del_vertices = {0};
  const MutationResult result = apply_mutation(parent, batch);
  EXPECT_EQ(result.child.vertex_weight(result.map[2]), 7);
}

TEST(Mutation, DuplicateOrOutOfRangeVertexDeleteThrows) {
  const Graph parent = make_path(4);
  MutationBatch twice;
  twice.del_vertices = {1, 1};
  EXPECT_THROW(apply_mutation(parent, twice), std::invalid_argument);
  MutationBatch oob;
  oob.del_vertices = {4};
  EXPECT_THROW(apply_mutation(parent, oob), std::invalid_argument);
}

TEST(Mutation, ApplyIsDeterministic) {
  const Graph parent = make_grid(4, 4);
  MutationBatch batch;
  batch.add_vertices = 2;
  batch.add_edges = {16, 0, 17, 5};
  batch.del_edges = {0, 1};
  batch.del_vertices = {3};
  const MutationResult a = apply_mutation(parent, batch);
  const MutationResult b = apply_mutation(parent, batch);
  EXPECT_EQ(graph_fingerprint(a.child), graph_fingerprint(b.child));
  EXPECT_EQ(a.map, b.map);
}

TEST(Mutation, BatchHashIsOrderAndFieldSensitive) {
  MutationBatch a;
  a.add_edges = {0, 1, 2, 3};
  MutationBatch b;
  b.add_edges = {2, 3, 0, 1};
  EXPECT_NE(a.hash(), b.hash());
  // The same numbers in a different field are a different batch.
  MutationBatch c;
  c.del_edges = {0, 1, 2, 3};
  EXPECT_NE(a.hash(), c.hash());
  EXPECT_EQ(a.hash(), MutationBatch{a}.hash());
}

// --- GraphStore ------------------------------------------------------------

std::shared_ptr<const Graph> shared_path(Vertex n) {
  return std::make_shared<const Graph>(make_path(n));
}

TEST(GraphStore, EvictsLeastRecentlyUsedFirst) {
  const auto g = shared_path(8);
  const std::uint64_t unit = graph_bytes(*g);
  GraphStore store(2 * unit);  // room for two path-8 graphs
  store.insert(1, shared_path(8));
  store.insert(2, shared_path(8));
  ASSERT_NE(store.lookup(1), nullptr);  // promote 1; 2 is now LRU
  store.insert(3, shared_path(8));
  EXPECT_TRUE(store.contains(1));
  EXPECT_FALSE(store.contains(2));
  EXPECT_TRUE(store.contains(3));
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_EQ(store.stats().entries, 2u);
}

TEST(GraphStore, OversizedGraphIsStillAdmittedAlone) {
  const auto small = shared_path(4);
  GraphStore store(graph_bytes(*small));
  store.insert(1, small);
  store.insert(2, shared_path(64));  // far over budget
  EXPECT_FALSE(store.contains(1));
  EXPECT_TRUE(store.contains(2));
  EXPECT_EQ(store.stats().entries, 1u);
}

TEST(GraphStore, LookupCountsHitsAndMisses) {
  GraphStore store(1 << 20);
  store.insert(1, shared_path(4));
  EXPECT_NE(store.lookup(1), nullptr);
  EXPECT_EQ(store.lookup(2), nullptr);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().misses, 1u);
  // contains() never counts.
  EXPECT_FALSE(store.contains(2));
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST(GraphStore, SharedPtrKeepsEvictedGraphAlive) {
  const auto g = shared_path(8);
  GraphStore store(graph_bytes(*g));
  store.insert(1, g);
  const std::shared_ptr<const Graph> held = store.lookup(1);
  store.insert(2, shared_path(8));  // evicts 1
  ASSERT_FALSE(store.contains(1));
  EXPECT_EQ(held->num_vertices(), 8u);  // the handed-out copy survives
}

// --- SvcLineage ------------------------------------------------------------

LineageRecord make_record(std::uint64_t parent, std::uint64_t child,
                          std::uint64_t batch_hash, std::uint32_t depth,
                          std::vector<Vertex> map = {0, 1, 2, 3}) {
  LineageRecord record;
  record.parent = parent;
  record.child = child;
  record.batch_hash = batch_hash;
  record.edit_distance = 1;
  record.depth = depth;
  record.parent_vertices = 4;
  record.vadds = map.empty() ? 0 : map.size() - 4;
  record.child_vertices = 4;
  record.map = std::move(map);
  return record;
}

TEST(SvcLineage, IndexesByChildAndByBatch) {
  SvcLineage lineage(8, 16);
  const auto [stored, inserted] =
      lineage.insert(make_record(100, 200, 7, 1));
  ASSERT_TRUE(inserted);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(lineage.by_child(200), stored);
  EXPECT_EQ(lineage.by_batch(100, 7), stored);
  EXPECT_EQ(lineage.by_child(100), nullptr);
  EXPECT_EQ(lineage.by_batch(100, 8), nullptr);
  EXPECT_EQ(lineage.depth_of(200), 1u);
  EXPECT_EQ(lineage.depth_of(100), 0u);  // roots have no record
}

TEST(SvcLineage, FirstRecordWins) {
  SvcLineage lineage(8, 16);
  lineage.insert(make_record(100, 200, 7, 1));
  // A second edge claiming the same child is a duplicate re-derivation.
  const auto [stored, inserted] = lineage.insert(make_record(101, 200, 9, 2));
  EXPECT_FALSE(inserted);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->parent, 100u);
  EXPECT_EQ(lineage.size(), 1u);
}

TEST(SvcLineage, EmptyMapHealsFromMatchingShape) {
  SvcLineage lineage(8, 16);
  // A journal-restored record: identity only, no map.
  lineage.insert(make_record(100, 200, 7, 1, {}));
  EXPECT_TRUE(lineage.by_child(200)->map.empty());
  // Re-materializing the chain heals it in place (parent_vertices +
  // vadds = 4 + 0 entries).
  const auto [stored, inserted] =
      lineage.insert(make_record(100, 200, 7, 1, {0, 1, 2, 3}));
  EXPECT_FALSE(inserted);  // not a new record
  EXPECT_EQ(stored->map.size(), 4u);
  EXPECT_FALSE(lineage.by_child(200)->map.empty());
}

TEST(SvcLineage, FullStoreRefusesNewRecords) {
  SvcLineage lineage(8, 1);
  ASSERT_TRUE(lineage.insert(make_record(100, 200, 7, 1)).second);
  EXPECT_TRUE(lineage.full());
  const auto [stored, inserted] = lineage.insert(make_record(200, 300, 7, 2));
  EXPECT_EQ(stored, nullptr);
  EXPECT_FALSE(inserted);
  // A repeat of the resident record still answers.
  EXPECT_NE(lineage.insert(make_record(100, 200, 7, 1)).first, nullptr);
}

TEST(SvcLineage, PointersSurviveLaterInserts) {
  SvcLineage lineage(64, 4096);
  const LineageRecord* first = lineage.insert(make_record(0, 1, 1, 1)).first;
  for (std::uint64_t i = 1; i < 1000; ++i) {
    lineage.insert(make_record(i, i + 1, 1, static_cast<std::uint32_t>(i)));
  }
  EXPECT_EQ(first->child, 1u);  // deque storage: no reallocation
  EXPECT_EQ(lineage.by_child(1), first);
}

// --- Warm start ------------------------------------------------------------

TEST(WarmStart, PlanWalksToTheNearestCachedAncestor) {
  SvcLineage lineage(8, 16);
  lineage.insert(make_record(100, 200, 1, 1));
  lineage.insert(make_record(200, 300, 2, 2));
  WarmPlan plan;
  // Only the root has a result: the chain covers both edges.
  ASSERT_TRUE(plan_warm_start(
      lineage, 300, 100, [](std::uint64_t fp) { return fp == 100; }, plan));
  EXPECT_EQ(plan.ancestor, 100u);
  EXPECT_EQ(plan.cumulative_edits, 2u);
  ASSERT_EQ(plan.chain.size(), 2u);
  EXPECT_EQ(plan.chain[0]->child, 200u);  // ancestor-down order
  EXPECT_EQ(plan.chain[1]->child, 300u);
  // The middle graph has a result too: the shorter chain wins.
  ASSERT_TRUE(plan_warm_start(
      lineage, 300, 100, [](std::uint64_t fp) { return fp == 200; }, plan));
  EXPECT_EQ(plan.ancestor, 200u);
  EXPECT_EQ(plan.chain.size(), 1u);
}

TEST(WarmStart, PlanGivesUpPastEditBudgetOrMaplessEdge) {
  SvcLineage lineage(8, 16);
  lineage.insert(make_record(100, 200, 1, 1));
  lineage.insert(make_record(200, 300, 2, 2));
  WarmPlan plan;
  // Cumulative edits (2) exceed the budget (1).
  EXPECT_FALSE(plan_warm_start(
      lineage, 300, 1, [](std::uint64_t fp) { return fp == 100; }, plan));
  // A journal-restored (map-less) edge is non-projectable.
  SvcLineage restored(8, 16);
  restored.insert(make_record(100, 200, 1, 1, {}));
  EXPECT_FALSE(plan_warm_start(
      restored, 200, 100, [](std::uint64_t fp) { return fp == 100; }, plan));
  // No cached ancestor anywhere: the walk reaches the root and fails.
  EXPECT_FALSE(plan_warm_start(
      lineage, 300, 100, [](std::uint64_t) { return false; }, plan));
}

TEST(WarmStart, ProjectSidesFollowsMapsAndMarksNewVertices) {
  SvcLineage lineage(8, 16);
  // Edge 1: delete vertex 1 of a 4-vertex parent (map 0,-,1,2), then
  // add one vertex -> child has 4 vertices, the last one chain-born.
  LineageRecord edge;
  edge.parent = 100;
  edge.child = 200;
  edge.batch_hash = 1;
  edge.depth = 1;
  edge.parent_vertices = 4;
  edge.vadds = 1;
  edge.child_vertices = 4;
  edge.map = {0, kDeletedVertex, 1, 2, 3};
  const LineageRecord* stored = lineage.insert(std::move(edge)).first;
  WarmPlan plan;
  plan.ancestor = 100;
  plan.chain = {stored};
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(project_sides(plan, {0, 0, 1, 1}, out));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 0);             // parent 0
  EXPECT_EQ(out[1], 1);             // parent 2
  EXPECT_EQ(out[2], 1);             // parent 3
  EXPECT_EQ(out[3], kUnplacedSide);  // chain-born
  // Shape mismatch (stale plan) is detected, not mis-projected.
  EXPECT_FALSE(project_sides(plan, {0, 0, 1}, out));
}

TEST(WarmStart, WarmSolveFinishesAProjectedPartition) {
  const Graph g = make_grid(4, 4);
  // Seed: the left half placed, the right half unplaced.
  std::vector<std::uint8_t> seeded(16, kUnplacedSide);
  for (Vertex v = 0; v < 16; ++v) {
    if (v % 4 < 2) seeded[v] = 0;
  }
  const WarmSolveResult result =
      warm_solve(g, seeded, /*max_passes=*/4, Deadline());
  ASSERT_EQ(result.sides.size(), 16u);
  Weight left = 0;
  for (const std::uint8_t side : result.sides) {
    ASSERT_LE(side, 1);  // every sentinel was placed
    if (side == 0) ++left;
  }
  EXPECT_EQ(left, 8);  // balanced
  // The 4x4 grid's optimal bisection cuts 4 edges; a warm refinement
  // of a half-good seed must find it.
  EXPECT_EQ(result.cut, 4);
  // Pure function of its inputs.
  const WarmSolveResult again =
      warm_solve(g, seeded, /*max_passes=*/4, Deadline());
  EXPECT_EQ(again.cut, result.cut);
  EXPECT_EQ(again.sides, result.sides);
}

TEST(WarmStart, WarmSolveRejectsWrongSeedShape) {
  const Graph g = make_path(4);
  EXPECT_THROW(warm_solve(g, std::vector<std::uint8_t>(3, 0), 4, Deadline()),
               std::invalid_argument);
}

}  // namespace
}  // namespace gbis
