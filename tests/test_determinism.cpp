// Determinism tests: every stochastic component must be a pure
// function of its seed — the property that makes every number in
// EXPERIMENTS.md reproducible. Runs each component twice from equal
// seeds and requires identical results.
#include <vector>

#include <gtest/gtest.h>

#include "gbis/core/compaction.hpp"
#include "gbis/core/multilevel.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/models.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/harness/runner.hpp"
#include "gbis/hypergraph/contract_hyper.hpp"
#include "gbis/hypergraph/netlist_gen.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(Determinism, Generators) {
  for (std::uint64_t seed : {1ull, 42ull, 19890625ull}) {
    Rng a(seed), b(seed);
    EXPECT_EQ(make_gnp(300, 0.01, a).edges(), make_gnp(300, 0.01, b).edges());
    const PlantedParams pp{200, 0.05, 0.05, 10};
    EXPECT_EQ(make_planted(pp, a).edges(), make_planted(pp, b).edges());
    const RegularPlantedParams rp{200, 8, 3};
    EXPECT_EQ(make_regular_planted(rp, a).edges(),
              make_regular_planted(rp, b).edges());
    EXPECT_EQ(make_geometric(200, 0.1, a).edges(),
              make_geometric(200, 0.1, b).edges());
    EXPECT_EQ(make_small_world(100, 4, 0.2, a).edges(),
              make_small_world(100, 4, 0.2, b).edges());
    EXPECT_EQ(make_preferential_attachment(100, 2, a).edges(),
              make_preferential_attachment(100, 2, b).edges());
  }
}

TEST(Determinism, NetlistGenerators) {
  Rng a(7), b(7);
  const NetlistParams params{100, 150, 1.0};
  const Hypergraph ha = make_random_netlist(params, a);
  const Hypergraph hb = make_random_netlist(params, b);
  ASSERT_EQ(ha.num_pins(), hb.num_pins());
  for (Net n = 0; n < ha.num_nets(); ++n) {
    const auto pa = ha.pins(n);
    const auto pb = hb.pins(n);
    ASSERT_EQ(std::vector<Cell>(pa.begin(), pa.end()),
              std::vector<Cell>(pb.begin(), pb.end()));
  }
}

TEST(Determinism, AllRunnerMethods) {
  const Method all[] = {Method::kKl,     Method::kSa,       Method::kCkl,
                        Method::kCsa,    Method::kFm,       Method::kCfm,
                        Method::kMultilevelKl, Method::kGreedy,
                        Method::kSpectral,     Method::kRandom};
  Rng gen(11);
  const Graph g = make_gnp(150, 0.04, gen);
  RunConfig config;
  config.starts = 2;
  config.sa.temperature_length_factor = 2.0;
  for (Method m : all) {
    Rng a(99), b(99);
    const RunResult ra = run_method(g, m, a, config);
    const RunResult rb = run_method(g, m, b, config);
    EXPECT_EQ(ra.best_cut, rb.best_cut) << method_name(m);
  }
}

TEST(Determinism, FibonacciEngineToo) {
  Rng a(RngEngine::kFibonacci, 5);
  Rng b(RngEngine::kFibonacci, 5);
  const Graph ga = make_gnp(200, 0.02, a);
  const Graph gb = make_gnp(200, 0.02, b);
  EXPECT_EQ(ga.edges(), gb.edges());
  // ...and it differs from the xoshiro stream with the same seed.
  Rng c(RngEngine::kXoshiro, 5);
  EXPECT_NE(ga.edges(), make_gnp(200, 0.02, c).edges());
}

TEST(Determinism, HyperCompaction) {
  Rng gen(13);
  const NetlistParams params{200, 300, 1.0};
  const Hypergraph h = make_random_netlist(params, gen);
  Rng a(3), b(3);
  const HyperBisection ba = compacted_hyper_fm(h, a);
  const HyperBisection bb = compacted_hyper_fm(h, b);
  EXPECT_EQ(ba.cut(), bb.cut());
  EXPECT_EQ(std::vector<std::uint8_t>(ba.sides().begin(), ba.sides().end()),
            std::vector<std::uint8_t>(bb.sides().begin(), bb.sides().end()));
}

TEST(Determinism, SeedsActuallyMatter) {
  // Guard against accidentally ignoring the seed: different seeds give
  // different graphs (overwhelmingly).
  Rng a(1), b(2);
  EXPECT_NE(make_gnp(300, 0.02, a).edges(), make_gnp(300, 0.02, b).edges());
}

}  // namespace
}  // namespace gbis
