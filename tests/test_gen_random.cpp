// Unit and property tests for the random graph models of paper section
// IV: Gnp, G2set (planted), Gbreg (regular planted).
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "gbis/gen/gnp.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/graph/ops.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(Gnp, EdgeCountNearExpectation) {
  Rng rng(1);
  const std::uint32_t n = 2000;
  const double p = 0.002;
  const Graph g = make_gnp(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;  // ~3998
  EXPECT_TRUE(g.validate());
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              6 * std::sqrt(expected));
}

TEST(Gnp, ExtremeProbabilities) {
  Rng rng(2);
  EXPECT_EQ(make_gnp(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(make_gnp(10, 1.0, rng).num_edges(), 45u);
  EXPECT_THROW(make_gnp(10, 1.5, rng), std::invalid_argument);
  EXPECT_THROW(make_gnp(10, -0.1, rng), std::invalid_argument);
}

TEST(Gnp, TinyGraphs) {
  Rng rng(3);
  EXPECT_EQ(make_gnp(0, 0.5, rng).num_vertices(), 0u);
  EXPECT_EQ(make_gnp(1, 0.5, rng).num_edges(), 0u);
}

TEST(Gnp, PForDegree) {
  EXPECT_DOUBLE_EQ(gnp_p_for_degree(101, 4.0), 0.04);
  EXPECT_THROW(gnp_p_for_degree(1, 1.0), std::invalid_argument);
  EXPECT_THROW(gnp_p_for_degree(10, 100.0), std::invalid_argument);
}

TEST(Gnp, DeterministicUnderSeed) {
  Rng a(77), b(77);
  const Graph ga = make_gnp(300, 0.01, a);
  const Graph gb = make_gnp(300, 0.01, b);
  EXPECT_EQ(ga.edges(), gb.edges());
}

TEST(Planted, ExactCrossEdgeCount) {
  Rng rng(4);
  const PlantedParams params{200, 0.05, 0.05, 37};
  const Graph g = make_planted(params, rng);
  EXPECT_TRUE(g.validate());
  const Bisection planted = Bisection::planted(g);
  EXPECT_EQ(planted.cut(), 37);
}

TEST(Planted, PlantedCutBoundsOptimal) {
  // The planted split is an upper bound on the bisection width.
  Rng rng(5);
  const PlantedParams params{100, 0.2, 0.2, 5};
  const Graph g = make_planted(params, rng);
  EXPECT_EQ(Bisection::planted(g).cut(), 5);
}

TEST(Planted, AsymmetricSides) {
  Rng rng(6);
  const PlantedParams params{400, 0.3, 0.01, 10};
  const Graph g = make_planted(params, rng);
  // Side A (dense) should have far more internal edges than side B.
  std::uint64_t in_a = 0, in_b = 0;
  for (const Edge& e : g.edges()) {
    if (e.u < 200 && e.v < 200) ++in_a;
    if (e.u >= 200 && e.v >= 200) ++in_b;
  }
  EXPECT_GT(in_a, 4 * in_b);
}

TEST(Planted, ParameterValidation) {
  Rng rng(7);
  EXPECT_THROW(make_planted({3, 0.5, 0.5, 0}, rng), std::invalid_argument);
  EXPECT_THROW(make_planted({10, 1.5, 0.5, 0}, rng), std::invalid_argument);
  EXPECT_THROW(make_planted({10, 0.5, 0.5, 26}, rng), std::invalid_argument);
}

TEST(Planted, ParamsForDegree) {
  const PlantedParams p = planted_params_for_degree(1000, 3.0, 50);
  // Expected edges: 1000*3/2 = 1500; cross 50; internal 1450 over
  // 2 * C(500,2) pairs.
  EXPECT_NEAR(p.p_a, 1450.0 / (2 * 500 * 499 / 2.0), 1e-12);
  EXPECT_EQ(p.bis, 50u);
  Rng rng(8);
  const Graph g = make_planted(p, rng);
  EXPECT_NEAR(g.average_degree(), 3.0, 0.3);
  EXPECT_THROW(planted_params_for_degree(100, 0.1, 1000),
               std::invalid_argument);
}

TEST(Planted, PlantedSidesHelper) {
  const auto sides = planted_sides(6);
  EXPECT_EQ(sides[0], 0);
  EXPECT_EQ(sides[2], 0);
  EXPECT_EQ(sides[3], 1);
  EXPECT_EQ(sides[5], 1);
}

TEST(RegularPlanted, ParamValidation) {
  // Requirements: even two_n >= 4, 1 <= d < n, b <= n*d, n*d - b even.
  EXPECT_TRUE(regular_planted_params_valid({100, 4, 3}));    // 150-4 even
  EXPECT_FALSE(regular_planted_params_valid({100, 3, 3}));   // parity
  EXPECT_FALSE(regular_planted_params_valid({100, 0, 60}));  // d >= n
  EXPECT_FALSE(regular_planted_params_valid({100, 0, 0}));   // d < 1
  EXPECT_FALSE(regular_planted_params_valid({101, 0, 3}));   // odd two_n
  EXPECT_FALSE(regular_planted_params_valid({100, 200, 3}));  // b > n*d
}

TEST(RegularPlanted, BuildsRegularSimpleGraph) {
  Rng rng(9);
  for (std::uint32_t d : {2u, 3u, 4u, 5u}) {
    // Per side n = 100, so n*d is even for every d; any even b works.
    const RegularPlantedParams params{200, 8, d};
    ASSERT_TRUE(regular_planted_params_valid(params));
    const Graph g = make_regular_planted(params, rng);
    EXPECT_TRUE(g.validate());
    EXPECT_TRUE(is_regular(g, d)) << "d=" << d;
    EXPECT_EQ(g.num_edges(), 100ull * d);
  }
}

TEST(RegularPlanted, PlantedCutIsExactlyB) {
  Rng rng(10);
  const RegularPlantedParams params{300, 16, 4};
  const Graph g = make_regular_planted(params, rng);
  EXPECT_EQ(Bisection::planted(g).cut(), 16);
}

TEST(RegularPlanted, DegreeTwoIsUnionOfCycles) {
  Rng rng(11);
  const RegularPlantedParams params{200, 4, 2};
  const Graph g = make_regular_planted(params, rng);
  EXPECT_TRUE(is_regular(g, 2));
  EXPECT_TRUE(is_union_of_cycles(g));
}

TEST(RegularPlanted, ZeroCrossEdgesDisconnectsHalves) {
  Rng rng(12);
  const RegularPlantedParams params{120, 0, 3};
  ASSERT_TRUE(regular_planted_params_valid(params));  // 180 even
  const Graph g = make_regular_planted(params, rng);
  EXPECT_EQ(Bisection::planted(g).cut(), 0);
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(e.u < 60, e.v < 60) << "cross edge found";
  }
}

TEST(RegularPlanted, InvalidParamsThrow) {
  Rng rng(13);
  EXPECT_THROW(make_regular_planted({100, 3, 3}, rng), std::invalid_argument);
  EXPECT_THROW(make_regular_planted({10, 0, 7}, rng), std::invalid_argument);
  EXPECT_THROW(make_regular_planted({5, 0, 2}, rng), std::invalid_argument);
}

}  // namespace
}  // namespace gbis
