// Tests for the multilevel (recursive compaction) extension.
#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "gbis/core/multilevel.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(Multilevel, ReturnsLegalBisection) {
  Rng rng(1);
  const Graph g = make_regular_planted({400, 8, 3}, rng);
  MultilevelStats stats;
  const Bisection b = multilevel_bisect(g, rng, kl_refiner(), {}, &stats);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_EQ(b.cut(), b.recompute_cut());
  EXPECT_EQ(stats.final_cut, b.cut());
  EXPECT_GT(stats.levels, 0u);
  EXPECT_LE(stats.coarsest_vertices, 64u + 64u);  // min_vertices bound-ish
}

TEST(Multilevel, ZeroLevelsEqualsPlainRefinement) {
  Rng rng(2);
  const Graph g = make_grid(10, 10);
  MultilevelOptions options;
  options.max_levels = 0;
  MultilevelStats stats;
  const Bisection b =
      multilevel_bisect(g, rng, kl_refiner(), options, &stats);
  EXPECT_EQ(stats.levels, 0u);
  EXPECT_EQ(stats.coarsest_vertices, 100u);
  EXPECT_TRUE(b.is_balanced());
}

TEST(Multilevel, StopsAtMinVertices) {
  Rng rng(3);
  const Graph g = make_grid(16, 16);  // 256 vertices
  MultilevelOptions options;
  options.min_vertices = 100;
  MultilevelStats stats;
  multilevel_bisect(g, rng, kl_refiner(), options, &stats);
  // 256 -> 128 -> 64; coarsening stops once <= 100 (at 64).
  EXPECT_LE(stats.coarsest_vertices, 128u);
  EXPECT_GE(stats.coarsest_vertices, 64u);
}

TEST(Multilevel, RecoversPlantedCutDeeply) {
  Rng rng(4);
  const Graph g = make_regular_planted({800, 8, 3}, rng);
  Weight best = std::numeric_limits<Weight>::max();
  for (int start = 0; start < 2; ++start) {
    best = std::min(best, multilevel_bisect(g, rng, kl_refiner()).cut());
  }
  EXPECT_LE(best, 12);
}

TEST(Multilevel, WorksWithFmRefiner) {
  Rng rng(5);
  const Graph g = make_gnp(300, 0.02, rng);
  const Bisection b = multilevel_bisect(g, rng, fm_refiner());
  EXPECT_LE(b.count_imbalance(), 1u);
  EXPECT_EQ(b.cut(), b.recompute_cut());
}

TEST(Multilevel, SmallGraphSkipsCoarsening) {
  Rng rng(6);
  const Graph g = make_grid(4, 4);  // 16 < min_vertices default 64
  MultilevelStats stats;
  multilevel_bisect(g, rng, kl_refiner(), {}, &stats);
  EXPECT_EQ(stats.levels, 0u);
}

TEST(Multilevel, HeavyEdgePolicy) {
  Rng rng(7);
  const Graph g = make_grid(12, 12);
  MultilevelOptions options;
  options.match_policy = MatchPolicy::kHeavyEdge;
  const Bisection b = multilevel_bisect(g, rng, kl_refiner(), options);
  EXPECT_TRUE(b.is_balanced());
}

TEST(Multilevel, DepthOneMatchesCompactionShape) {
  // max_levels = 1 is exactly the paper's single compaction.
  Rng rng(8);
  const Graph g = make_regular_planted({300 * 2, 8, 3}, rng);
  MultilevelOptions options;
  options.max_levels = 1;
  MultilevelStats stats;
  multilevel_bisect(g, rng, kl_refiner(), options, &stats);
  EXPECT_EQ(stats.levels, 1u);
  EXPECT_EQ(stats.coarsest_vertices, 300u);
}

}  // namespace
}  // namespace gbis
