// Weighted-graph property sweeps: every refinement algorithm must stay
// correct on the weighted graphs that contraction produces — the
// regime the compaction pipeline exercises internally.
#include <tuple>

#include <gtest/gtest.h>

#include "gbis/core/contract.hpp"
#include "gbis/core/matching.hpp"
#include "gbis/fm/fm.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/sa/sa.hpp"

namespace gbis {
namespace {

enum class Algo { kKl, kFm, kSa };

using SweepParam = std::tuple<Algo, std::uint32_t, int>;  // algo, n, levels

class WeightedSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(WeightedSweep, LegalOnContractedGraphs) {
  const auto [algo, n, levels] = GetParam();
  Rng rng(n * 31 + static_cast<std::uint32_t>(algo) * 7 +
          static_cast<std::uint32_t>(levels));
  Graph g = make_gnp(n, 6.0 / n, rng);
  // Contract `levels` times: vertex weights 2^levels, merged edge
  // weights, exactly the graphs the multilevel pipeline refines.
  for (int level = 0; level < levels; ++level) {
    const Matching m = maximal_matching(g, rng);
    g = contract_matching(g, m, rng).coarse;
  }
  ASSERT_GE(g.num_vertices(), 4u);

  Bisection b = Bisection::random(g, rng);
  const Weight before = b.cut();
  switch (algo) {
    case Algo::kKl:
      kl_refine(b);
      break;
    case Algo::kFm:
      fm_refine(b);
      break;
    case Algo::kSa: {
      SaOptions options;
      options.temperature_length_factor = 2.0;
      options.cooling_ratio = 0.85;
      sa_refine(b, rng, options);
      break;
    }
  }
  EXPECT_LE(b.cut(), before);
  EXPECT_LE(b.count_imbalance(), 1u);
  ASSERT_EQ(b.cut(), b.recompute_cut());
  EXPECT_TRUE(b.validate());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeightedSweep,
    testing::Combine(testing::Values(Algo::kKl, Algo::kFm, Algo::kSa),
                     testing::Values(64u, 128u, 256u),
                     testing::Values(1, 2, 3)));

TEST(WeightedSweep, KlOnContractedPlantedStillFindsStructure) {
  // Contract a planted Gbreg graph once; the planted cut survives in
  // the coarse graph (projection invariant), and KL on the coarse
  // graph should find a cut no larger than a random coarse cut.
  Rng rng(99);
  const Graph fine = make_regular_planted({600, 8, 3}, rng);
  const Matching m = maximal_matching(fine, rng);
  const Contraction c = contract_matching(fine, m, rng);
  Bisection coarse = Bisection::random(c.coarse, rng);
  const Weight random_cut = coarse.cut();
  kl_refine(coarse);
  EXPECT_LT(coarse.cut(), random_cut / 2);
}

}  // namespace
}  // namespace gbis
