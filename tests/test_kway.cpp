// Tests for k-way partitioning by recursive bisection.
#include <set>
#include <stdexcept>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/gen/gnp.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/kway/partition.hpp"
#include "gbis/kway/recursive.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(KwayPartition, TotalsAndCut) {
  const Graph g = make_cycle(8);
  // Parts: {0,1}, {2,3}, {4,5}, {6,7} around the cycle: cut 4.
  std::vector<std::uint32_t> labels{0, 0, 1, 1, 2, 2, 3, 3};
  const KwayPartition p(g, 4, std::move(labels));
  EXPECT_EQ(p.edge_cut(), 4);
  EXPECT_EQ(p.part_count(0), 2u);
  EXPECT_DOUBLE_EQ(p.balance_factor(), 1.0);
  EXPECT_EQ(p.max_count_spread(), 0u);
  EXPECT_TRUE(p.validate());
}

TEST(KwayPartition, RejectsBadInput) {
  const Graph g = make_cycle(4);
  EXPECT_THROW(KwayPartition(g, 0, {0, 0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(KwayPartition(g, 2, {0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(KwayPartition(g, 2, {0, 0, 0, 5}), std::invalid_argument);
}

TEST(RecursiveKway, KEqualsOneAndTwo) {
  Rng rng(1);
  const Graph g = make_grid(6, 6);
  const KwayPartition whole = recursive_kway(g, 1, rng);
  EXPECT_EQ(whole.edge_cut(), 0);
  EXPECT_EQ(whole.part_count(0), 36u);

  KwayStats stats;
  const KwayPartition halves = recursive_kway(g, 2, rng, {}, &stats);
  EXPECT_EQ(stats.bisections, 1u);
  EXPECT_EQ(halves.max_count_spread(), 0u);
  EXPECT_LE(halves.edge_cut(), 10);  // optimum 6 on a 6x6 grid
}

TEST(RecursiveKway, PowerOfTwoBalanced) {
  Rng rng(2);
  const Graph g = make_grid(8, 8);
  KwayStats stats;
  const KwayPartition p = recursive_kway(g, 4, rng, {}, &stats);
  EXPECT_EQ(stats.bisections, 3u);
  EXPECT_EQ(p.max_count_spread(), 0u);
  EXPECT_TRUE(p.validate());
  // A 4-way quadrant split of an 8x8 grid cuts 16 edges; allow slack.
  EXPECT_LE(p.edge_cut(), 28);
}

TEST(RecursiveKway, NonPowerOfTwoNearBalanced) {
  Rng rng(3);
  const Graph g = make_gnp(90, 0.08, rng);
  for (std::uint32_t k : {3u, 5u, 6u, 7u}) {
    const KwayPartition p = recursive_kway(g, k, rng);
    EXPECT_LE(p.max_count_spread(), 2u) << "k=" << k;
    EXPECT_TRUE(p.validate()) << "k=" << k;
    // All parts used.
    std::set<std::uint32_t> used(p.parts().begin(), p.parts().end());
    EXPECT_EQ(used.size(), k) << "k=" << k;
  }
}

TEST(RecursiveKway, PlantedFourBlocks) {
  // Four dense blocks joined by a few edges: 4-way should cut little.
  Rng rng(4);
  GraphBuilder builder(48);
  for (std::uint32_t blk = 0; blk < 4; ++blk) {
    const Vertex base = blk * 12;
    for (Vertex u = 0; u < 12; ++u) {
      for (Vertex v = u + 1; v < 12; ++v) {
        if (rng.bernoulli(0.6)) builder.add_edge(base + u, base + v);
      }
    }
  }
  for (std::uint32_t blk = 0; blk + 1 < 4; ++blk) {
    builder.add_edge(blk * 12, (blk + 1) * 12);
  }
  const Graph g = builder.build();
  const KwayPartition p = recursive_kway(g, 4, rng);
  EXPECT_LE(p.edge_cut(), 12);
  EXPECT_EQ(p.max_count_spread(), 0u);
}

TEST(RecursiveKway, KEqualsN) {
  Rng rng(5);
  const Graph g = make_cycle(6);
  const KwayPartition p = recursive_kway(g, 6, rng);
  EXPECT_EQ(p.max_count_spread(), 0u);
  EXPECT_EQ(p.edge_cut(), 6);  // every edge crosses
}

TEST(RecursiveKway, InvalidK) {
  Rng rng(6);
  const Graph g = make_cycle(4);
  EXPECT_THROW(recursive_kway(g, 0, rng), std::invalid_argument);
  EXPECT_THROW(recursive_kway(g, 5, rng), std::invalid_argument);
}

TEST(RecursiveKway, CompactionToggle) {
  Rng rng(7);
  const Graph g = make_regular_planted({400, 8, 3}, rng);
  KwayOptions with;
  with.use_compaction = true;
  KwayOptions without;
  without.use_compaction = false;
  const KwayPartition pc = recursive_kway(g, 2, rng, with);
  const KwayPartition pp = recursive_kway(g, 2, rng, without);
  EXPECT_TRUE(pc.validate());
  EXPECT_TRUE(pp.validate());
  // Compaction should not be worse on the family it was designed for.
  EXPECT_LE(pc.edge_cut(), pp.edge_cut() + 8);
}

class KwayProperty
    : public testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(KwayProperty, LegalAcrossSizesAndK) {
  const auto [n, k] = GetParam();
  Rng rng(n * 13 + k);
  const Graph g = make_gnp(n, 5.0 / n, rng);
  const KwayPartition p = recursive_kway(g, k, rng);
  EXPECT_TRUE(p.validate());
  EXPECT_LE(p.max_count_spread(), 2u);
  EXPECT_LE(p.edge_cut(), g.total_edge_weight());
}

INSTANTIATE_TEST_SUITE_P(Sweep, KwayProperty,
                         testing::Combine(testing::Values(40u, 81u, 160u),
                                          testing::Values(2u, 3u, 4u, 7u,
                                                          8u)));

}  // namespace
}  // namespace gbis
