// Tests for partition-file serialization.
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/io/partition_io.hpp"

namespace gbis {
namespace {

TEST(PartitionIo, RoundTrip) {
  const std::vector<std::uint32_t> parts{0, 2, 1, 1, 0, 3};
  std::stringstream ss;
  write_partition(ss, parts);
  EXPECT_EQ(read_partition(ss), parts);
}

TEST(PartitionIo, SidesVariant) {
  const std::vector<std::uint8_t> sides{0, 1, 1, 0};
  std::stringstream ss;
  write_partition_sides(ss, sides);
  const auto parts = read_partition(ss, 4, 2);
  EXPECT_EQ(parts, (std::vector<std::uint32_t>{0, 1, 1, 0}));
}

TEST(PartitionIo, SkipsBlankLines) {
  std::stringstream ss("0\n\n1\n  \n0\n");
  EXPECT_EQ(read_partition(ss), (std::vector<std::uint32_t>{0, 1, 0}));
}

TEST(PartitionIo, RejectsMalformedInput) {
  std::stringstream garbage("0\nabc\n");
  EXPECT_THROW(read_partition(garbage), std::runtime_error);
  std::stringstream extra("0 extra\n");
  EXPECT_THROW(read_partition(extra), std::runtime_error);
  std::stringstream wrong_count("0\n1\n");
  EXPECT_THROW(read_partition(wrong_count, 3), std::runtime_error);
  std::stringstream out_of_range("0\n5\n");
  EXPECT_THROW(read_partition(out_of_range, 0, 2), std::runtime_error);
}

TEST(PartitionIo, FileRoundTripAndErrors) {
  const std::vector<std::uint32_t> parts{1, 0, 1};
  const std::string path = testing::TempDir() + "/gbis_part_test.part";
  write_partition_file(path, parts);
  EXPECT_EQ(read_partition_file(path, 3, 2), parts);
  EXPECT_THROW(read_partition_file("/nonexistent/x.part"),
               std::runtime_error);
  EXPECT_THROW(write_partition_file("/nonexistent/dir/x.part", parts),
               std::runtime_error);
}

TEST(PartitionIo, EmptyInput) {
  std::stringstream ss("");
  EXPECT_TRUE(read_partition(ss).empty());
  std::stringstream ss2("");
  EXPECT_THROW(read_partition(ss2, 5), std::runtime_error);
}

}  // namespace
}  // namespace gbis
