// Cross-module property sweeps (parameterized): invariants that must
// hold for every algorithm on every graph family, plus model-level
// distributional properties.
#include <algorithm>
#include <limits>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/core/compaction.hpp"
#include "gbis/exact/brute.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/ops.hpp"
#include "gbis/harness/runner.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

// --- Every method yields a legal bisection on every family ---------------

enum class Family { kGnp, kPlanted, kRegular, kGrid, kLadder, kTree };

Graph make_family(Family family, std::uint32_t n, Rng& rng) {
  switch (family) {
    case Family::kGnp:
      return make_gnp(n, 5.0 / n, rng);
    case Family::kPlanted:
      return make_planted(planted_params_for_degree(n - n % 2, 3.0, 4), rng);
    case Family::kRegular: {
      const std::uint32_t even = n - n % 2;
      const std::uint64_t b = (static_cast<std::uint64_t>(even / 2) * 3) % 2;
      return make_regular_planted({even, b + 4, 3}, rng);
    }
    case Family::kGrid: {
      std::uint32_t side = 2;
      while (side * side < n) ++side;
      return make_grid(side, side);
    }
    case Family::kLadder:
      return make_ladder(std::max(1u, n / 2));
    case Family::kTree:
      return make_binary_tree(n);
  }
  return Graph{};
}

using MethodFamilyParam = std::tuple<Method, Family>;

class MethodFamilyProperty
    : public testing::TestWithParam<MethodFamilyParam> {};

TEST_P(MethodFamilyProperty, ProducesLegalBisection) {
  const auto [method, family] = GetParam();
  Rng rng(static_cast<std::uint64_t>(static_cast<int>(method)) * 97 +
          static_cast<std::uint64_t>(static_cast<int>(family)) * 13 + 1);
  const Graph g = make_family(family, 80, rng);
  RunConfig config;
  config.starts = 1;
  config.sa.temperature_length_factor = 2.0;
  config.sa.cooling_ratio = 0.85;
  const RunResult result = run_method(g, method, rng, config);
  EXPECT_GE(result.best_cut, 0);
  EXPECT_LE(result.best_cut, g.total_edge_weight());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MethodFamilyProperty,
    testing::Combine(testing::Values(Method::kKl, Method::kSa, Method::kCkl,
                                     Method::kCsa, Method::kFm, Method::kCfm,
                                     Method::kMultilevelKl, Method::kGreedy,
                                     Method::kSpectral, Method::kRandom),
                     testing::Values(Family::kGnp, Family::kPlanted,
                                     Family::kRegular, Family::kGrid,
                                     Family::kLadder, Family::kTree)));

// --- Heuristics never beat the exact optimum ------------------------------

class NeverBelowOptimum : public testing::TestWithParam<std::uint32_t> {};

TEST_P(NeverBelowOptimum, OnSmallRandomGraphs) {
  const std::uint32_t seed = GetParam();
  Rng rng(seed);
  const Graph g = make_gnp(14, 0.35, rng);
  const Weight optimal = brute_force_bisection(g).cut;
  RunConfig config;
  config.starts = 2;
  config.sa.temperature_length_factor = 4.0;
  for (Method m : {Method::kKl, Method::kSa, Method::kCkl, Method::kCsa,
                   Method::kFm, Method::kGreedy, Method::kSpectral}) {
    const RunResult result = run_method(g, m, rng, config);
    EXPECT_GE(result.best_cut, optimal) << method_name(m);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NeverBelowOptimum,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// --- KL reaches the optimum on small instances with restarts -------------

class KlNearOptimal : public testing::TestWithParam<std::uint32_t> {};

TEST_P(KlNearOptimal, WithRestartsOnDenseSmallGraphs) {
  const std::uint32_t seed = GetParam();
  Rng rng(seed * 7 + 1);
  const Graph g = make_gnp(12, 0.5, rng);
  const Weight optimal = brute_force_bisection(g).cut;
  RunConfig config;
  config.starts = 8;
  const RunResult result = run_method(g, Method::kKl, rng, config);
  EXPECT_EQ(result.best_cut, optimal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KlNearOptimal,
                         testing::Values(1u, 2u, 3u, 4u, 5u));

// --- Gbreg distributional properties across the parameter grid -----------

using GbregParam = std::tuple<std::uint32_t, std::uint32_t>;  // (two_n, d)

class GbregGridProperty : public testing::TestWithParam<GbregParam> {};

TEST_P(GbregGridProperty, RegularSimpleWithExactPlantedCut) {
  const auto [two_n, d] = GetParam();
  Rng rng(two_n * 31 + d);
  const std::uint64_t b = 8;
  const RegularPlantedParams params{two_n, b, d};
  ASSERT_TRUE(regular_planted_params_valid(params));
  const Graph g = make_regular_planted(params, rng);
  EXPECT_TRUE(g.validate());
  EXPECT_TRUE(is_regular(g, d));
  EXPECT_EQ(Bisection::planted(g).cut(), static_cast<Weight>(b));
}

INSTANTIATE_TEST_SUITE_P(Grid, GbregGridProperty,
                         testing::Combine(testing::Values(40u, 100u, 200u,
                                                          500u),
                                          testing::Values(2u, 3u, 4u, 5u)));

// --- Compaction invariant: projected start never exceeds coarse cut ------

class CompactionInvariant : public testing::TestWithParam<std::uint32_t> {};

TEST_P(CompactionInvariant, CoarseCutEqualsProjectedCut) {
  const std::uint32_t n = GetParam();
  Rng rng(n + 99);
  const Graph g = make_gnp(n, 4.0 / n, rng);
  CompactionStats stats;
  compacted_bisect(g, rng, kl_refiner(), {}, &stats);
  EXPECT_EQ(stats.coarse_cut, stats.projected_cut);
  EXPECT_LE(stats.final_cut, stats.projected_cut);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompactionInvariant,
                         testing::Values(20u, 50u, 100u, 200u, 401u));

}  // namespace
}  // namespace gbis
