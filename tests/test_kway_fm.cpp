// Tests for k-way Fiduccia-Mattheyses refinement.
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/gen/gnp.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/kway/kway_fm.hpp"
#include "gbis/kway/recursive.hpp"
#include "gbis/kway/refine.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(KwayFm, NeverWorsensAndKeepsWindow) {
  Rng rng(1);
  for (std::uint32_t k : {2u, 3u, 4u, 6u}) {
    const Graph g = make_gnp(120, 0.06, rng);
    const KwayPartition initial = recursive_kway(g, k, rng);
    KwayFmStats stats;
    const KwayPartition refined = kway_fm_refine(initial, rng, {}, &stats);
    EXPECT_LE(refined.edge_cut(), initial.edge_cut()) << "k=" << k;
    EXPECT_TRUE(refined.validate());
    for (std::uint32_t p = 0; p < k; ++p) {
      EXPECT_GE(refined.part_count(p) + 1, 120 / k) << "k=" << k;
      EXPECT_LE(refined.part_count(p), (120 + k - 1) / k + 1) << "k=" << k;
    }
    EXPECT_EQ(stats.final_cut, refined.edge_cut());
  }
}

TEST(KwayFm, EscapesLocalOptimaGreedyCannot) {
  // Ring of blocks misassigned pairwise: fixing requires a temporary
  // uphill move (swap-shaped), which greedy single moves cannot make
  // under tight balance but FM's prefix mechanism can. Statistical
  // claim, so compare averages across instances.
  Rng rng(2);
  double fm_total = 0, greedy_total = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = make_regular_planted({200, 8, 3}, rng);
    const KwayPartition initial = recursive_kway(g, 4, rng);
    fm_total +=
        static_cast<double>(kway_fm_refine(initial, rng).edge_cut());
    greedy_total +=
        static_cast<double>(kway_refine(initial, rng).edge_cut());
  }
  EXPECT_LE(fm_total, greedy_total);
}

TEST(KwayFm, FixesMisassignedCliqueVertices) {
  Rng rng(3);
  GraphBuilder builder(12);
  for (std::uint32_t blk = 0; blk < 3; ++blk) {
    const Vertex base = blk * 4;
    for (Vertex u = 0; u < 4; ++u) {
      for (Vertex v = u + 1; v < 4; ++v) builder.add_edge(base + u, base + v);
    }
  }
  builder.add_edge(0, 4);
  builder.add_edge(4, 8);
  const Graph g = builder.build();
  std::vector<std::uint32_t> labels{0, 0, 0, 1, 1, 1, 1, 0, 2, 2, 2, 2};
  const KwayPartition bad(g, 3, std::move(labels));
  const KwayPartition fixed = kway_fm_refine(bad, rng);
  EXPECT_LT(fixed.edge_cut(), bad.edge_cut());
  EXPECT_EQ(fixed.part(3), fixed.part(0));
  EXPECT_EQ(fixed.part(7), fixed.part(4));
}

TEST(KwayFm, DegenerateInputs) {
  Rng rng(4);
  const Graph g = make_cycle(6);
  // k = 1: nothing to do.
  const KwayPartition whole(g, 1, std::vector<std::uint32_t>(6, 0));
  EXPECT_EQ(kway_fm_refine(whole, rng).edge_cut(), 0);
  // Empty graph.
  GraphBuilder empty(0);
  const Graph g0 = empty.build();
  const KwayPartition p0(g0, 2, {});
  EXPECT_EQ(kway_fm_refine(p0, rng).edge_cut(), 0);
}

TEST(KwayFm, MaxPassesAndMoveCap) {
  Rng rng(5);
  const Graph g = make_gnp(100, 0.08, rng);
  const KwayPartition initial = recursive_kway(g, 4, rng);
  KwayFmOptions options;
  options.max_passes = 1;
  options.max_moves_fraction = 0.1;
  KwayFmStats stats;
  kway_fm_refine(initial, rng, options, &stats);
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_LE(stats.moves_considered, 10u);
}

class KwayFmProperty
    : public testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(KwayFmProperty, LegalAcrossSizesAndK) {
  const auto [n, k] = GetParam();
  Rng rng(n * 19 + k);
  const Graph g = make_gnp(n, 5.0 / n, rng);
  const KwayPartition initial = recursive_kway(g, k, rng);
  const KwayPartition refined = kway_fm_refine(initial, rng);
  EXPECT_TRUE(refined.validate());
  EXPECT_LE(refined.edge_cut(), initial.edge_cut());
}

INSTANTIATE_TEST_SUITE_P(Sweep, KwayFmProperty,
                         testing::Combine(testing::Values(48u, 100u, 201u),
                                          testing::Values(2u, 3u, 5u, 8u)));

}  // namespace
}  // namespace gbis
