// Regression suite for the flat-JSON scanner (util/json_lite) — the
// parsing layer under both the checkpoint journal and the service
// protocol. The first three groups pin the socket-hardening bug fixes:
// a naive substring key search matching inside string values, strtoull
// wraparound accepting negative budgets, and \u escapes silently
// truncating or embedding NUL bytes.
#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "gbis/util/json_lite.hpp"

namespace gbis {
namespace {

// --- Bug 1: key search must not match inside string values ----------------

TEST(JsonFind, KeyTextInsideAStringValueDoesNotMatch) {
  // The old scanner find()'d the quoted key anywhere in the line; a
  // value containing "op":"..." text spoofed the field.
  const std::string line =
      R"({"id":"evil\",\"op\":\"stats","op":"ping"})";
  const std::size_t at = json_find_value(line, "op");
  ASSERT_NE(at, std::string::npos);
  std::string op;
  ASSERT_TRUE(json_parse_string(line, "op", op));
  EXPECT_EQ(op, "ping");
}

TEST(JsonFind, UnescapedQuoteMisparseIsNowStructurallyRejected) {
  // The exact shape that misparsed before: a stray quote ends the id
  // early and the bytes `op":"ping"` read as a real field. The strict
  // validator refuses the line outright.
  const std::string line = R"({"id":"x"op":"ping","budget":1})";
  EXPECT_FALSE(json_object_valid(line));
  // And the lenient scanner stops at the structural break instead of
  // resynchronizing onto the smuggled key.
  EXPECT_EQ(json_find_value(line, "op"), std::string::npos);
  EXPECT_EQ(json_find_value(line, "budget"), std::string::npos);
}

TEST(JsonFind, FirstTopLevelOccurrenceWins) {
  std::uint64_t value = 0;
  ASSERT_TRUE(json_parse_u64(R"({"n":1,"n":2})", "n", value));
  EXPECT_EQ(value, 1u);
}

TEST(JsonFind, NestedKeysDoNotShadowTopLevel) {
  const std::string line = R"({"inner":{"cut":99},"cut":7})";
  std::uint64_t cut = 0;
  ASSERT_TRUE(json_parse_u64(line, "cut", cut));
  EXPECT_EQ(cut, 7u);
}

TEST(JsonFind, KeyAfterNestedArraysIsFound) {
  // The checkpoint journal shape: histogram buckets as nested arrays,
  // scalar fields after them.
  const std::string line = R"({"hists":[[1,2],[3,4]],"cut":7})";
  std::uint64_t cut = 0;
  ASSERT_TRUE(json_parse_u64(line, "cut", cut));
  EXPECT_EQ(cut, 7u);
}

TEST(JsonFind, AbsentKeyIsNpos) {
  EXPECT_EQ(json_find_value(R"({"a":1})", "b"), std::string::npos);
  EXPECT_EQ(json_find_value("", "a"), std::string::npos);
  EXPECT_EQ(json_find_value("not json", "a"), std::string::npos);
}

// --- Bug 2: numeric range errors must fail, not wrap ----------------------

TEST(JsonNumbers, NegativeU64IsRejectedNotWrapped) {
  // strtoull("-1") "succeeds" with 2^64-1; a request {"budget":-1}
  // must not turn into 18 quintillion trials.
  std::uint64_t value = 123;
  EXPECT_FALSE(json_parse_u64(R"({"budget":-1})", "budget", value));
  EXPECT_EQ(value, 123u) << "out must be untouched on failure";
}

TEST(JsonNumbers, U64OverflowIsRejected) {
  std::uint64_t value = 0;
  EXPECT_TRUE(
      json_parse_u64(R"({"n":18446744073709551615})", "n", value));
  EXPECT_EQ(value, std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(
      json_parse_u64(R"({"n":18446744073709551616})", "n", value));
}

TEST(JsonNumbers, I64RangeIsEnforced) {
  std::int64_t value = 0;
  EXPECT_TRUE(json_parse_i64(R"({"n":-9223372036854775808})", "n", value));
  EXPECT_EQ(value, std::numeric_limits<std::int64_t>::min());
  EXPECT_FALSE(json_parse_i64(R"({"n":9223372036854775808})", "n", value));
  EXPECT_FALSE(json_parse_i64(R"({"n":-9223372036854775809})", "n", value));
}

TEST(JsonNumbers, ExplicitPlusSignIsRejected) {
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double d = 0;
  EXPECT_FALSE(json_parse_u64(R"({"n":+1})", "n", u));
  EXPECT_FALSE(json_parse_i64(R"({"n":+1})", "n", i));
  EXPECT_FALSE(json_parse_double(R"({"n":+1})", "n", d));
}

TEST(JsonNumbers, NonFiniteDoubleIsRejected) {
  double value = 0;
  EXPECT_FALSE(json_parse_double(R"({"x":1e999})", "x", value));
  EXPECT_TRUE(json_parse_double(R"({"x":-2.5e-3})", "x", value));
  EXPECT_DOUBLE_EQ(value, -2.5e-3);
}

// --- Bug 3: \u escape handling --------------------------------------------

TEST(JsonStrings, UnicodeEscapeDecodesToUtf8) {
  std::string out;
  ASSERT_TRUE(json_parse_string(R"({"s":"A"})", "s", out));
  EXPECT_EQ(out, "A");
  ASSERT_TRUE(json_parse_string(R"({"s":"\u00e9"})", "s", out));
  EXPECT_EQ(out, "\xc3\xa9");  // e-acute, 2-byte UTF-8
  ASSERT_TRUE(json_parse_string(R"({"s":"\u20ac"})", "s", out));
  EXPECT_EQ(out, "\xe2\x82\xac");  // euro sign, 3-byte UTF-8
}

TEST(JsonStrings, SurrogatePairDecodesToFourByteUtf8) {
  std::string out;
  ASSERT_TRUE(json_parse_string(R"({"s":"\ud83d\ude00"})", "s", out));
  EXPECT_EQ(out, "\xf0\x9f\x98\x80");  // U+1F600, grinning face
}

TEST(JsonStrings, MalformedUnicodeEscapesFailTheParse) {
  std::string out = "untouched";
  // Non-hex digits: the old code decoded \uZZZZ to a NUL byte.
  EXPECT_FALSE(json_parse_string(R"({"s":"\uZZZZ"})", "s", out));
  // Truncated escape: the old code silently skipped it.
  EXPECT_FALSE(json_parse_string(R"({"s":"\u00"})", "s", out));
  EXPECT_FALSE(json_parse_string(R"({"s":"a\u12"})", "s", out));
  // Lone surrogates, both halves.
  EXPECT_FALSE(json_parse_string(R"({"s":"\ud800"})", "s", out));
  EXPECT_FALSE(json_parse_string(R"({"s":"\udc00x"})", "s", out));
  EXPECT_EQ(out, "untouched");
}

TEST(JsonStrings, IllegalEscapesAndBadTerminationFail) {
  std::string out;
  EXPECT_FALSE(json_parse_string(R"({"s":"\x41"})", "s", out));
  EXPECT_FALSE(json_parse_string(R"({"s":"unterminated)", "s", out));
  EXPECT_FALSE(json_parse_string("{\"s\":\"raw\tcontrol\"}", "s", out));
  EXPECT_FALSE(json_parse_string(R"({"s":42})", "s", out));
}

TEST(JsonStrings, SimpleEscapeSetRoundTrips) {
  std::string out;
  ASSERT_TRUE(json_parse_string(R"({"s":"a\"b\\c\/d\b\f\n\r\t"})", "s",
                                out));
  EXPECT_EQ(out, "a\"b\\c/d\b\f\n\r\t");
}

TEST(JsonStrings, AppendJsonStringRoundTrips) {
  const std::string original = "line1\nline2\t\"quoted\" \\slash\\ \x01";
  std::string line = "{\"s\":";
  append_json_string(line, original);
  line += "}";
  ASSERT_TRUE(json_object_valid(line));
  std::string decoded;
  ASSERT_TRUE(json_parse_string(line, "s", decoded));
  EXPECT_EQ(decoded, original);
}

// --- json_object_valid: the socket-facing structural gate -----------------

TEST(JsonValid, AcceptsTheProtocolShapes) {
  EXPECT_TRUE(json_object_valid(R"({})"));
  EXPECT_TRUE(json_object_valid(R"({"id":"r1","op":"ping"})"));
  EXPECT_TRUE(json_object_valid(
      R"({"op":"solve","inline":"2 1\n0 1\n","budget":4,)"
      R"("deadline_s":0.5,"want_sides":true,"seed":7})"));
  EXPECT_TRUE(json_object_valid(R"({"a":null,"b":[1,[2,3]],"c":{"d":1}})"));
  EXPECT_TRUE(json_object_valid("  {\"a\":1}  "));
}

TEST(JsonValid, RejectsStructuralGarbage) {
  EXPECT_FALSE(json_object_valid(""));
  EXPECT_FALSE(json_object_valid("ping"));
  EXPECT_FALSE(json_object_valid(R"([1,2,3])"));
  EXPECT_FALSE(json_object_valid(R"({"a":1)"));          // unclosed
  EXPECT_FALSE(json_object_valid(R"({"a":1}})"));        // trailing brace
  EXPECT_FALSE(json_object_valid(R"({"a":1}x)"));        // trailing bytes
  EXPECT_FALSE(json_object_valid(R"({"a" 1})"));         // missing colon
  EXPECT_FALSE(json_object_valid(R"({"a":1,})"));        // trailing comma
  EXPECT_FALSE(json_object_valid(R"({a:1})"));           // bare key
  EXPECT_FALSE(json_object_valid(R"({"a":01})"));        // leading zero
  EXPECT_FALSE(json_object_valid(R"({"a":nul})"));       // bad literal
  EXPECT_FALSE(json_object_valid(R"({"s":"\uZZ"})"));    // bad escape
  EXPECT_FALSE(json_object_valid(R"({"id":"x"op":"y"})"));
}

TEST(JsonValid, DepthIsCapped) {
  std::string deep = "{\"a\":";
  for (int i = 0; i < 32; ++i) deep += "[";
  for (int i = 0; i < 32; ++i) deep += "]";
  deep += "}";
  EXPECT_FALSE(json_object_valid(deep));
}

// --- journal-compat leniency (the scanner, not the validator) -------------

TEST(JsonFind, LenientScalarSkipKeepsHistoricalJournalLinesParsing) {
  // Historical journal lines may hold bare tokens the strict grammar
  // refuses (hex hashes); the key *search* must still walk past them.
  const std::string line = R"({"hash":deadbeef,"cut":7})";
  std::uint64_t cut = 0;
  EXPECT_TRUE(json_parse_u64(line, "cut", cut));
  EXPECT_EQ(cut, 7u);
  EXPECT_FALSE(json_object_valid(line));
}

TEST(JsonHex, ToHex16IsZeroPaddedLowercase) {
  EXPECT_EQ(to_hex16(0), "0000000000000000");
  EXPECT_EQ(to_hex16(0xDEADBEEFull), "00000000deadbeef");
  EXPECT_EQ(to_hex16(~0ull), "ffffffffffffffff");
}

TEST(JsonHex, ParseHex16IsAStrictInverse) {
  std::uint64_t value = 0;
  ASSERT_TRUE(parse_hex16("00000000deadbeef", value));
  EXPECT_EQ(value, 0xDEADBEEFull);
  ASSERT_TRUE(parse_hex16(to_hex16(~0ull), value));
  EXPECT_EQ(value, ~0ull);
  for (const char* bad :
       {"", "deadbeef", "00000000DEADBEEF", "0x00000000deadbee",
        "+0000000deadbeef", "00000000deadbeef0", " 0000000deadbeef",
        "00000000deadbeeg"}) {
    value = 42;
    EXPECT_FALSE(parse_hex16(bad, value)) << bad;
    EXPECT_EQ(value, 42u) << bad;  // untouched on failure
  }
}

// --- json_parse_u64_array --------------------------------------------------

TEST(JsonArray, ParsesFlatUnsignedArrays) {
  std::vector<std::uint64_t> out;
  ASSERT_TRUE(json_parse_u64_array("{\"a\":[1,2,3]}", "a", out, 8));
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 2, 3}));
  ASSERT_TRUE(json_parse_u64_array("{\"a\":[]}", "a", out, 8));
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(json_parse_u64_array("{\"a\": [ 7 , 0 ] }", "a", out, 8));
  EXPECT_EQ(out, (std::vector<std::uint64_t>{7, 0}));
  ASSERT_TRUE(json_parse_u64_array(
      "{\"a\":[18446744073709551615]}", "a", out, 8));
  EXPECT_EQ(out.front(), ~0ull);
  // Cap is inclusive: exactly max_elements parses, one more fails.
  ASSERT_TRUE(json_parse_u64_array("{\"a\":[1,2]}", "a", out, 2));
  EXPECT_FALSE(json_parse_u64_array("{\"a\":[1,2,3]}", "a", out, 2));
}

TEST(JsonArray, MalformedArraysFailWithOutputUntouched) {
  // The corpus every wire-facing consumer (the mutate op's edit
  // batches) depends on rejecting.
  const char* corpus[] = {
      "{\"a\":[1,2}",            // unterminated
      "{\"a\":[1,,2]}",          // empty element
      "{\"a\":[,]}",             // ditto
      "{\"a\":[1,2,]}",          // trailing comma
      "{\"a\":[-1]}",            // negative
      "{\"a\":[+1]}",            // sign
      "{\"a\":[1.5]}",           // float
      "{\"a\":[1e3]}",           // exponent
      "{\"a\":[01]}",            // leading zero
      "{\"a\":[18446744073709551616]}",  // u64 overflow
      "{\"a\":[\"1\"]}",         // string element
      "{\"a\":[[1]]}",           // nested array
      "{\"a\":[{}]}",            // nested object
      "{\"a\":[true]}",          // literal
      "{\"a\":[null]}",          // literal
      "{\"a\":1}",               // not an array
      "{\"a\":\"[1]\"}",         // array spelled inside a string
      "{\"b\":[1]}",             // key absent
  };
  for (const char* line : corpus) {
    std::vector<std::uint64_t> out{99};
    EXPECT_FALSE(json_parse_u64_array(line, "a", out, 8)) << line;
    EXPECT_EQ(out, (std::vector<std::uint64_t>{99})) << line;
  }
}

TEST(JsonArray, OnlyTopLevelKeysMatch) {
  std::vector<std::uint64_t> out;
  // "a" inside a nested object is not the top-level "a".
  ASSERT_TRUE(json_parse_u64_array(
      "{\"x\":{\"a\":[9]},\"a\":[1]}", "a", out, 8));
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1}));
  // A string value containing the key cannot spoof it.
  EXPECT_FALSE(json_parse_u64_array(
      "{\"x\":\"\\\"a\\\":[9]\"}", "a", out, 8));
}

// --- Strict enum fields (the request "quality" tier) -----------------------
//
// The three-state contract: absent is fine (the caller defaults),
// valid binds, and present-but-invalid is a hard parse error — a typo
// like "quality":"fastest" must never silently run at the default
// rung.

constexpr const char* kTiers[] = {"fast", "balanced", "best"};

TEST(JsonEnum, AbsentKeyLeavesOutputUntouched) {
  std::string out = "sentinel";
  EXPECT_EQ(json_parse_enum("{\"id\":\"a\"}", "quality", kTiers, 3, out),
            JsonEnumStatus::kAbsent);
  EXPECT_EQ(out, "sentinel");
}

TEST(JsonEnum, EveryAllowedValueBinds) {
  for (const char* tier : kTiers) {
    std::string out;
    const std::string line =
        std::string("{\"quality\":\"") + tier + "\"}";
    EXPECT_EQ(json_parse_enum(line, "quality", kTiers, 3, out),
              JsonEnumStatus::kValid)
        << line;
    EXPECT_EQ(out, tier);
  }
}

TEST(JsonEnum, MalformedQualityCorpusIsInvalidNotDefaulted) {
  // Present-but-wrong in every shape a client gets it wrong: typos,
  // case drift, whitespace, embedded terminators, wrong JSON types.
  const char* corpus[] = {
      "{\"quality\":\"fastest\"}",       // typo past a valid prefix
      "{\"quality\":\"Fast\"}",          // case-sensitive
      "{\"quality\":\"BEST\"}",
      "{\"quality\":\" fast\"}",         // stray whitespace
      "{\"quality\":\"fast \"}",
      "{\"quality\":\"\"}",              // empty string is not absent
      "{\"quality\":\"fast\\u0000\"}",   // embedded NUL
      "{\"quality\":\"balanced,best\"}",
      "{\"quality\":0}",                 // wrong type: number
      "{\"quality\":true}",              // wrong type: bool
      "{\"quality\":null}",              // wrong type: null
      "{\"quality\":[\"fast\"]}",        // wrong type: array
      "{\"quality\":{\"tier\":\"fast\"}}",
  };
  for (const char* line : corpus) {
    std::string out = "sentinel";
    EXPECT_EQ(json_parse_enum(line, "quality", kTiers, 3, out),
              JsonEnumStatus::kInvalid)
        << line;
    // kInvalid carries the offending text for error messages ("" for
    // non-string values) — never the sentinel, never a silent default.
    EXPECT_NE(out, "sentinel") << line;
  }
}

TEST(JsonEnum, SpoofedKeyInsideAStringValueIsAbsent) {
  std::string out = "sentinel";
  EXPECT_EQ(json_parse_enum("{\"id\":\"\\\"quality\\\":\\\"fast\\\"\"}",
                            "quality", kTiers, 3, out),
            JsonEnumStatus::kAbsent);
  EXPECT_EQ(out, "sentinel");
}

}  // namespace
}  // namespace gbis
