// Tests for DOT export and partition metrics.
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/baseline/random_bisect.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/io/dot.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/partition/metrics.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(Dot, PlainGraphStructure) {
  const Graph g = make_cycle(4);
  std::ostringstream out;
  write_dot(out, g);
  const std::string text = out.str();
  EXPECT_NE(text.find("graph gbis {"), std::string::npos);
  EXPECT_NE(text.find("0 -- 1"), std::string::npos);
  EXPECT_NE(text.find("0 -- 3"), std::string::npos);
  EXPECT_EQ(text.find("dashed"), std::string::npos);  // no parts, no cuts
}

TEST(Dot, BisectionColorsAndCutEdges) {
  const Graph g = make_path(4);
  const std::vector<std::uint8_t> sides{0, 0, 1, 1};
  std::ostringstream out;
  write_dot_bisection(out, g, sides);
  const std::string text = out.str();
  // Exactly one cut edge (1-2) rendered dashed.
  EXPECT_NE(text.find("dashed"), std::string::npos);
  EXPECT_EQ(text.find("dashed"), text.rfind("dashed"));
  EXPECT_NE(text.find("fillcolor"), std::string::npos);
}

TEST(Dot, WeightedEdgeLabels) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 7);
  std::ostringstream out;
  write_dot(out, b.build());
  EXPECT_NE(out.str().find("label=\"7\""), std::string::npos);

  DotOptions options;
  options.edge_labels = false;
  GraphBuilder b2(2);
  b2.add_edge(0, 1, 7);
  std::ostringstream out2;
  write_dot(out2, b2.build(), {}, options);
  EXPECT_EQ(out2.str().find("label"), std::string::npos);
}

TEST(Dot, PartsSizeMismatchThrows) {
  const Graph g = make_path(4);
  const std::vector<std::uint32_t> wrong{0, 1};
  std::ostringstream out;
  EXPECT_THROW(write_dot(out, g, wrong), std::invalid_argument);
}

TEST(Dot, ManyPartsCyclePalette) {
  const Graph g = make_complete(12);
  std::vector<std::uint32_t> parts(12);
  for (std::uint32_t v = 0; v < 12; ++v) parts[v] = v;  // 12 > palette
  std::ostringstream out;
  write_dot(out, g, parts);  // must not crash or index OOB
  EXPECT_NE(out.str().find("fillcolor"), std::string::npos);
}

TEST(Dot, FileWrite) {
  const Graph g = make_cycle(5);
  const std::string path = testing::TempDir() + "/gbis_test.dot";
  write_dot_file(path, g);
  std::ifstream check(path);
  EXPECT_TRUE(check.good());
  EXPECT_THROW(write_dot_file("/nonexistent/dir/x.dot", g),
               std::runtime_error);
}

TEST(Metrics, PathSplitInHalf) {
  const Graph g = make_path(8);
  const Bisection b(g, {0, 0, 0, 0, 1, 1, 1, 1});
  const BisectionMetrics m = bisection_metrics(b);
  EXPECT_EQ(m.cut, 1);
  EXPECT_DOUBLE_EQ(m.expansion, 0.25);  // 1 / 4
  // vol of each side: 3 inner degrees 2 + 1 end degree 1 = 7.
  EXPECT_DOUBLE_EQ(m.conductance, 1.0 / 7.0);
  EXPECT_LT(m.vs_random, 1.0);  // far better than random
}

TEST(Metrics, CompleteGraphIsRandomLike) {
  const Graph g = make_complete(8);
  Rng rng(1);
  const Bisection b = Bisection::random(g, rng);
  const BisectionMetrics m = bisection_metrics(b);
  EXPECT_NEAR(m.vs_random, 1.0, 1e-9);  // every balanced cut is equal
}

TEST(Metrics, EdgelessGraph) {
  GraphBuilder builder(4);
  const Graph g = builder.build();
  const Bisection b(g, {0, 0, 1, 1});
  const BisectionMetrics m = bisection_metrics(b);
  EXPECT_EQ(m.cut, 0);
  EXPECT_DOUBLE_EQ(m.conductance, 0.0);
  EXPECT_DOUBLE_EQ(m.expansion, 0.0);
  EXPECT_DOUBLE_EQ(m.vs_random, 0.0);
}

TEST(Metrics, OneSidedSplit) {
  const Graph g = make_cycle(4);
  const Bisection b(g, {0, 0, 0, 0});
  const BisectionMetrics m = bisection_metrics(b);
  EXPECT_EQ(m.cut, 0);
  EXPECT_DOUBLE_EQ(m.expansion, 0.0);  // empty side guarded
}

}  // namespace
}  // namespace gbis
