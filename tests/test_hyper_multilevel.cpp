// Tests for multilevel hypergraph FM.
#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "gbis/hypergraph/fm_hyper.hpp"
#include "gbis/hypergraph/multilevel_hyper.hpp"
#include "gbis/hypergraph/netlist_gen.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(HyperMultilevel, LegalAndConsistent) {
  Rng rng(1);
  const NetlistParams params{600, 900, 1.0};
  const Hypergraph h = make_planted_netlist(params, 12, rng);
  HyperMultilevelStats stats;
  const HyperBisection b = multilevel_hyper_fm(h, rng, {}, &stats);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_EQ(b.cut(), b.recompute_cut());
  EXPECT_EQ(stats.final_cut, b.cut());
  EXPECT_GT(stats.levels, 0u);
  EXPECT_LE(stats.coarsest_cells, 600u);
}

TEST(HyperMultilevel, RecoversPlantedCut) {
  Rng rng(2);
  const NetlistParams params{800, 1200, 1.0};
  const Hypergraph h = make_planted_netlist(params, 10, rng);
  Weight best = std::numeric_limits<Weight>::max();
  for (int s = 0; s < 2; ++s) {
    best = std::min(best, multilevel_hyper_fm(h, rng).cut());
  }
  EXPECT_LE(best, 10 + 5);
}

TEST(HyperMultilevel, SmallNetlistSkipsCoarsening) {
  Rng rng(3);
  const NetlistParams params{40, 60, 1.0};
  const Hypergraph h = make_random_netlist(params, rng);
  HyperMultilevelStats stats;
  multilevel_hyper_fm(h, rng, {}, &stats);
  EXPECT_EQ(stats.levels, 0u);
}

TEST(HyperMultilevel, NoWorseThanSingleLevelOnAverage) {
  Rng rng(4);
  double single_total = 0, multi_total = 0;
  for (int trial = 0; trial < 4; ++trial) {
    const NetlistParams params{500, 750, 1.0};
    const Hypergraph h = make_planted_netlist(params, 16, rng);
    HyperBisection single = HyperBisection::random(h, rng);
    hyper_fm_refine(single);
    single_total += static_cast<double>(single.cut());
    multi_total += static_cast<double>(multilevel_hyper_fm(h, rng).cut());
  }
  EXPECT_LE(multi_total, single_total + 8);
}

TEST(HyperMultilevel, HeavyConnectivityPolicy) {
  Rng rng(5);
  const NetlistParams params{300, 450, 1.2};
  const Hypergraph h = make_random_netlist(params, rng);
  HyperMultilevelOptions options;
  options.match_policy = HyperMatchPolicy::kHeavyConnectivity;
  const HyperBisection b = multilevel_hyper_fm(h, rng, options);
  EXPECT_TRUE(b.is_balanced());
}

}  // namespace
}  // namespace gbis
