// Partition-service suite: graph fingerprinting (shared with the
// campaign journal — the golden value below pins cross-version journal
// compatibility), the LRU result cache, the budgeted solver policy,
// the NDJSON protocol, and the scheduler's determinism contract: the
// response stream is a pure function of the request stream for any
// worker count.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "gbis/gen/gnp.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/harness/checkpoint.hpp"
#include "gbis/harness/shutdown.hpp"
#include "gbis/io/edge_list.hpp"
#include "gbis/obs/span.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/svc/cache.hpp"
#include "gbis/svc/fingerprint.hpp"
#include "gbis/svc/listener.hpp"
#include "gbis/svc/policy.hpp"
#include "gbis/svc/protocol.hpp"
#include "gbis/rng/splitmix.hpp"
#include "gbis/svc/scheduler.hpp"
#include "gbis/util/json_lite.hpp"

namespace gbis {
namespace {

std::string inline_payload(const Graph& g) {
  std::ostringstream out;
  write_edge_list(out, g);
  return out.str();
}

std::string solve_line(const std::string& id, const Graph& g,
                       const std::string& extra = "") {
  std::string payload;
  append_json_string(payload, inline_payload(g));
  return "{\"id\":\"" + id + "\"" + extra + ",\"op\":\"solve\",\"inline\":" +
         payload + "}";
}

// Deletes the wall-clock fields from a response / access-log line so
// the rest can be byte-compared across thread counts. By convention
// (docs/SERVICE.md) every nondeterministic key ends in `_us`; values
// are bare numbers or (exemplar keys) strings, and span payloads carry
// the same keys JSON-escaped inside the "spans" string, so the pattern
// accepts an optional backslash before each quote.
std::string strip_timing(const std::string& line) {
  static const std::regex timing(
      ",(\\\\)?\"[A-Za-z0-9_]*_us(\\\\)?\":(\"[^\"]*\"|[-+0-9.eE]+)");
  return std::regex_replace(line, timing, "");
}

std::vector<std::string> strip_timing(std::vector<std::string> lines) {
  for (std::string& line : lines) line = strip_timing(line);
  return lines;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// --- Fingerprint -----------------------------------------------------------

// Golden value captured from the pre-refactor checkpoint hash (the
// same bytes, then private to harness/checkpoint.cpp). If this test
// breaks, every existing campaign journal stops resuming — change the
// fingerprint only with a journal-migration story.
TEST(Fingerprint, CampaignGoldenValueIsStable) {
  std::vector<Graph> graphs;
  graphs.push_back(make_grid(4, 4));
  graphs.push_back(make_ladder(5));
  const std::vector<Method> methods{Method::kKl, Method::kCkl};
  RunConfig config;
  config.starts = 2;
  const auto trials =
      enumerate_trial_matrix(graphs.size(), methods, config.starts);
  EXPECT_EQ(campaign_fingerprint(7, config, trials, graphs),
            0x308ed261561afa99ull);
}

TEST(Fingerprint, InsertionOrderInvariant) {
  GraphBuilder forward(4);
  forward.add_edge(0, 1);
  forward.add_edge(1, 2);
  forward.add_edge(2, 3);
  GraphBuilder backward(4);
  backward.add_edge(3, 2);
  backward.add_edge(2, 1);
  backward.add_edge(1, 0);
  EXPECT_EQ(graph_fingerprint(forward.build()),
            graph_fingerprint(backward.build()));
}

TEST(Fingerprint, SensitiveToStructureLabelsAndWeights) {
  const std::uint64_t base = graph_fingerprint(make_grid(3, 3));
  EXPECT_NE(base, graph_fingerprint(make_grid(3, 4)));

  GraphBuilder path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  GraphBuilder relabeled(3);  // same shape, different center label
  relabeled.add_edge(1, 0);
  relabeled.add_edge(0, 2);
  EXPECT_NE(graph_fingerprint(path.build()),
            graph_fingerprint(relabeled.build()));

  GraphBuilder weighted(3);
  weighted.add_edge(0, 1, 2);
  weighted.add_edge(1, 2);
  GraphBuilder unit(3);
  unit.add_edge(0, 1);
  unit.add_edge(1, 2);
  EXPECT_NE(graph_fingerprint(weighted.build()),
            graph_fingerprint(unit.build()));

  GraphBuilder heavy_vertex(3);
  heavy_vertex.add_edge(0, 1);
  heavy_vertex.add_edge(1, 2);
  heavy_vertex.set_vertex_weight(0, 5);
  EXPECT_NE(graph_fingerprint(heavy_vertex.build()),
            graph_fingerprint(unit.build()));
}

// --- Result cache ----------------------------------------------------------

SvcCacheValue small_value(Weight cut, std::size_t sides_bytes) {
  SvcCacheValue value;
  value.cut = cut;
  value.method = "KL";
  value.trials_ok = 1;
  value.sides.assign(sides_bytes, 0);
  return value;
}

SvcCacheKey key_of(std::uint64_t fingerprint) {
  SvcCacheKey key;
  key.fingerprint = fingerprint;
  return key;
}

TEST(SvcCache, HitMissAndPromotion) {
  SvcResultCache cache(1 << 20);
  EXPECT_EQ(cache.lookup(key_of(1)), nullptr);
  cache.insert(key_of(1), small_value(10, 8));
  const SvcCacheValue* hit = cache.lookup(key_of(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cut, 10);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(SvcCache, EvictsLeastRecentlyUsed) {
  // Budget sized to hold exactly two entries of this shape.
  SvcResultCache probe(1 << 20);
  probe.insert(key_of(0), small_value(0, 64));
  const std::uint64_t entry_bytes = probe.stats().bytes;

  SvcResultCache cache(2 * entry_bytes);
  cache.insert(key_of(1), small_value(1, 64));
  cache.insert(key_of(2), small_value(2, 64));
  ASSERT_NE(cache.lookup(key_of(1)), nullptr);  // 1 is now MRU
  cache.insert(key_of(3), small_value(3, 64));  // evicts 2, the LRU
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.lookup(key_of(1)), nullptr);
  EXPECT_EQ(cache.lookup(key_of(2)), nullptr);
  EXPECT_NE(cache.lookup(key_of(3)), nullptr);
  EXPECT_LE(cache.stats().bytes, 2 * entry_bytes);
}

TEST(SvcCache, ZeroBudgetDisablesCaching) {
  SvcResultCache cache(0);
  cache.insert(key_of(1), small_value(1, 8));
  EXPECT_EQ(cache.lookup(key_of(1)), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(SvcCache, DistinctIdentityFieldsNeverAlias) {
  SvcResultCache cache(1 << 20);
  SvcCacheKey key = key_of(7);
  cache.insert(key, small_value(1, 8));
  SvcCacheKey other = key;
  other.seed = 99;
  EXPECT_EQ(cache.lookup(other), nullptr);
  other = key;
  other.budget = 4;
  EXPECT_EQ(cache.lookup(other), nullptr);
  other = key;
  other.method_key = 0;
  EXPECT_EQ(cache.lookup(other), nullptr);
  other = key;
  other.deadline_bits = 42;
  EXPECT_EQ(cache.lookup(other), nullptr);
}

// --- Policy ----------------------------------------------------------------

Graph policy_graph() {
  Rng rng(11);
  return make_gnp(64, gnp_p_for_degree(64, 4.0), rng);
}

TEST(Policy, PortfolioIsDeterministicAndKeepsSides) {
  const Graph g = policy_graph();
  PolicySpec spec;
  spec.budget = 5;
  const PolicyResult a = run_policy(g, spec, 7, {}, /*keep_sides=*/true);
  const PolicyResult b = run_policy(g, spec, 7, {}, /*keep_sides=*/true);
  ASSERT_EQ(a.status, TrialStatus::kOk);
  EXPECT_EQ(a.ok, 5u);
  EXPECT_EQ(a.best_cut, b.best_cut);
  EXPECT_EQ(a.best_method, b.best_method);
  EXPECT_EQ(a.best_sides, b.best_sides);

  // The reported sides must actually be a bisection with the reported
  // cut.
  Bisection check(g, std::vector<std::uint8_t>(a.best_sides));
  EXPECT_EQ(check.cut(), a.best_cut);
}

TEST(Policy, BudgetOneIsOneCklStart) {
  const Graph g = policy_graph();
  PolicySpec spec;
  spec.budget = 1;
  const PolicyResult result = run_policy(g, spec, 7);
  ASSERT_EQ(result.status, TrialStatus::kOk);
  EXPECT_EQ(result.best_method, Method::kCkl);

  PolicySpec single;
  single.portfolio = false;
  single.method = Method::kCkl;
  single.budget = 1;
  EXPECT_EQ(run_policy(g, single, 7).best_cut, result.best_cut);
}

TEST(Policy, ExpiredDeadlineTimesOutEveryTrial) {
  const Graph g = policy_graph();
  PolicySpec spec;
  spec.budget = 3;
  spec.deadline_seconds = 1e-9;
  const PolicyResult result = run_policy(g, spec, 7);
  EXPECT_EQ(result.status, TrialStatus::kTimedOut);
  EXPECT_EQ(result.timed_out, 3u);
  EXPECT_EQ(result.ok, 0u);
}

TEST(Policy, StopFlagSkipsRemainingTrials) {
  const Graph g = policy_graph();
  PolicySpec spec;
  spec.budget = 4;
  std::atomic<bool> stop{true};
  const PolicyResult result = run_policy(g, spec, 7, {}, false, &stop);
  EXPECT_EQ(result.status, TrialStatus::kSkipped);
  EXPECT_EQ(result.skipped, 4u);
}

// --- Protocol --------------------------------------------------------------

TEST(Protocol, ParsesSolveRequest) {
  SvcRequest request;
  std::string error;
  ASSERT_TRUE(parse_request(
      R"({"id":"r1","op":"solve","path":"g.graph","method":"kl",)"
      R"("budget":4,"deadline_s":0.5,"seed":9,"want_sides":true})",
      request, error));
  EXPECT_EQ(request.id, "r1");
  EXPECT_EQ(request.op, SvcRequest::Op::kSolve);
  EXPECT_EQ(request.path, "g.graph");
  EXPECT_EQ(request.method, "kl");
  EXPECT_EQ(request.budget, 4u);
  EXPECT_DOUBLE_EQ(request.deadline_seconds, 0.5);
  EXPECT_TRUE(request.has_seed);
  EXPECT_EQ(request.seed, 9u);
  EXPECT_TRUE(request.want_sides);
}

TEST(Protocol, RejectsMalformedRequests) {
  SvcRequest request;
  std::string error;
  EXPECT_FALSE(parse_request("", request, error));
  EXPECT_TRUE(error.starts_with("parse:"));
  EXPECT_FALSE(parse_request("not json", request, error));
  EXPECT_FALSE(parse_request(R"({"op":"explode"})", request, error));
  EXPECT_FALSE(parse_request(R"({"op":"solve"})", request, error));
  EXPECT_FALSE(
      parse_request(R"({"op":"solve","path":"a","inline":"b"})", request,
                    error));
  EXPECT_FALSE(
      parse_request(R"({"op":"solve","path":"a","budget":0})", request,
                    error));
  EXPECT_FALSE(parse_request(R"({"op":"solve","path":"a","deadline_s":-1})",
                             request, error));
  // The id still comes back for correlation.
  EXPECT_FALSE(
      parse_request(R"({"id":"bad","op":"explode"})", request, error));
  EXPECT_EQ(request.id, "bad");
}

TEST(Protocol, EncodeIsScannableByTheSharedParser) {
  SvcResponse response;
  response.id = "weird \"id\"\n";
  response.ok = true;
  response.has_solve = true;
  response.cut = 12;
  response.method = "CKL";
  response.trials_ok = 2;
  response.fingerprint = 0xabcull;
  response.cache = "hit";
  const std::string line = encode_response(response);
  std::string id, cache;
  std::uint64_t cut = 0;
  EXPECT_TRUE(json_parse_string(line, "id", id));
  EXPECT_EQ(id, response.id);
  EXPECT_TRUE(json_parse_u64(line, "cut", cut));
  EXPECT_EQ(cut, 12u);
  EXPECT_TRUE(json_parse_string(line, "cache", cache));
  EXPECT_EQ(cache, "hit");
}

// --- Service / scheduler ---------------------------------------------------

SvcOptions test_options(unsigned threads = 1) {
  SvcOptions options;
  options.threads = threads;
  options.batch_size = 4;
  options.default_budget = 2;
  return options;
}

std::vector<std::string> run_sequence(const SvcOptions& options,
                                      const std::vector<std::string>& lines) {
  Service service(options);
  std::vector<std::string> out;
  for (const std::string& line : lines) {
    service.submit_line(line, out);
    if (service.pending() >= options.batch_size) service.process_batch(out);
  }
  service.drain(out);
  return out;
}

TEST(Service, SolvesAndEchoesIdentity) {
  const Graph g = make_grid(6, 6);
  const auto out = run_sequence(test_options(), {solve_line("a", g)});
  ASSERT_EQ(out.size(), 1u);
  std::string cache;
  std::uint64_t cut = 0;
  EXPECT_TRUE(out[0].starts_with("{\"id\":\"a\",\"ok\":true"));
  EXPECT_TRUE(json_parse_u64(out[0], "cut", cut));
  EXPECT_EQ(cut, 6u);  // the 6x6 grid's optimal bisection
  EXPECT_TRUE(json_parse_string(out[0], "cache", cache));
  EXPECT_EQ(cache, "miss");
}

TEST(Service, ResponseStreamIsThreadCountInvariant) {
  const Graph grid = make_grid(7, 5);
  const Graph ladder = make_ladder(9);
  Rng rng(3);
  const Graph gnp = make_gnp(48, gnp_p_for_degree(48, 3.0), rng);
  std::vector<std::string> lines;
  lines.push_back(solve_line("a", grid, ",\"want_sides\":true"));
  lines.push_back(solve_line("b", ladder, ",\"method\":\"kl\""));
  lines.push_back(solve_line("c", gnp, ",\"budget\":5"));
  lines.push_back("{\"id\":\"p\",\"op\":\"ping\"}");
  lines.push_back(solve_line("d", grid, ",\"want_sides\":true"));  // repeat
  lines.push_back(solve_line("e", gnp, ",\"seed\":99"));
  lines.push_back("{\"id\":\"s\",\"op\":\"stats\"}");

  // The stats line carries wall-clock latency fields (`*_us`), which
  // are the one documented exception to the determinism contract —
  // strip them, then require byte identity.
  const auto one = strip_timing(run_sequence(test_options(1), lines));
  const auto two = strip_timing(run_sequence(test_options(2), lines));
  const auto eight = strip_timing(run_sequence(test_options(8), lines));
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(Service, RepeatAcrossBatchesIsServedFromCache) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.batch_size = 1;  // every request is its own batch
  Service service(options);
  std::vector<std::string> first, second;
  service.submit_line(solve_line("cold", g, ",\"want_sides\":true"), first);
  service.drain(first);
  service.submit_line(solve_line("warm", g, ",\"want_sides\":true"), second);
  service.drain(second);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);

  std::string cold_cache, warm_cache, cold_sides, warm_sides;
  ASSERT_TRUE(json_parse_string(first[0], "cache", cold_cache));
  ASSERT_TRUE(json_parse_string(second[0], "cache", warm_cache));
  EXPECT_EQ(cold_cache, "miss");
  EXPECT_EQ(warm_cache, "hit");
  // Identical payloads: the hit is byte-for-byte the cold answer.
  ASSERT_TRUE(json_parse_string(first[0], "sides", cold_sides));
  ASSERT_TRUE(json_parse_string(second[0], "sides", warm_sides));
  EXPECT_EQ(cold_sides, warm_sides);
  EXPECT_EQ(service.cache_stats().hits, 1u);
}

TEST(Service, DuplicatesWithinABatchCoalesce) {
  const Graph g = make_grid(6, 6);
  Service service(test_options());
  std::vector<std::string> out;
  service.submit_line(solve_line("lead", g), out);
  service.submit_line(solve_line("follow", g), out);
  // Same graph, different seed: NOT a duplicate.
  service.submit_line(solve_line("other", g, ",\"seed\":5"), out);
  service.drain(out);
  ASSERT_EQ(out.size(), 3u);
  std::string cache;
  ASSERT_TRUE(json_parse_string(out[0], "cache", cache));
  EXPECT_EQ(cache, "miss");
  ASSERT_TRUE(json_parse_string(out[1], "cache", cache));
  EXPECT_EQ(cache, "coalesced");
  ASSERT_TRUE(json_parse_string(out[2], "cache", cache));
  EXPECT_EQ(cache, "miss");
  EXPECT_EQ(service.metrics().counter(Counter::kSvcCoalesced), 1u);

  std::uint64_t lead_cut = 0, follow_cut = 0;
  ASSERT_TRUE(json_parse_u64(out[0], "cut", lead_cut));
  ASSERT_TRUE(json_parse_u64(out[1], "cut", follow_cut));
  EXPECT_EQ(lead_cut, follow_cut);
}

TEST(Service, FullQueueRejectsWithReason) {
  SvcOptions options = test_options();
  options.max_queue = 2;
  options.batch_size = 100;  // never auto-flush
  Service service(options);
  const Graph g = make_grid(4, 4);
  std::vector<std::string> out;
  service.submit_line(solve_line("a", g), out);
  service.submit_line(solve_line("b", g), out);
  EXPECT_TRUE(out.empty());
  service.submit_line(solve_line("c", g), out);  // bounces
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].starts_with("{\"id\":\"c\",\"ok\":false"));
  std::string error;
  ASSERT_TRUE(json_parse_string(out[0], "error", error));
  EXPECT_TRUE(error.starts_with("rejected: queue full"));
  EXPECT_EQ(service.metrics().counter(Counter::kSvcRejected), 1u);
  // The admitted requests still answer, in order.
  service.drain(out);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[1].starts_with("{\"id\":\"a\""));
  EXPECT_TRUE(out[2].starts_with("{\"id\":\"b\""));
}

TEST(Service, ExpiredDeadlineAnswersDeadlineError) {
  const Graph g = make_grid(6, 6);
  const auto out = run_sequence(
      test_options(), {solve_line("d", g, ",\"deadline_s\":1e-9")});
  ASSERT_EQ(out.size(), 1u);
  std::string error;
  ASSERT_TRUE(json_parse_string(out[0], "error", error));
  EXPECT_TRUE(error.starts_with("deadline"));
  // And the degraded answer must not poison the cache for the same
  // request without a deadline.
  const auto ok = run_sequence(test_options(), {solve_line("d", g)});
  EXPECT_TRUE(ok[0].starts_with("{\"id\":\"d\",\"ok\":true"));
}

TEST(Service, StopFlagDrainsQueuedSolvesAsShutdown) {
  const Graph g = make_grid(6, 6);
  Service service(test_options());
  std::vector<std::string> out;
  service.submit_line(solve_line("q1", g), out);
  service.submit_line(solve_line("q2", g), out);
  std::atomic<bool> stop{true};  // the kill arrives before dispatch
  service.drain(out, &stop);
  ASSERT_EQ(out.size(), 2u);
  for (const std::string& line : out) {
    std::string error;
    ASSERT_TRUE(json_parse_string(line, "error", error));
    EXPECT_TRUE(error.starts_with("shutdown"));
  }
}

TEST(Service, BadInputsAnswerInOrderWithoutKillingTheStream) {
  const Graph g = make_grid(4, 4);
  const auto out = run_sequence(
      test_options(),
      {"{\"id\":\"m\",\"op\":\"solve\",\"inline\":\"2 1\\n0 1\\n\","
       "\"method\":\"bogus\"}",
       "{\"id\":\"io\",\"op\":\"solve\",\"path\":\"/nonexistent.graph\"}",
       "{\"id\":\"junk\" this is not json",
       "{\"id\":\"g\",\"op\":\"solve\",\"inline\":\"garbage here\"}",
       solve_line("ok", g)});
  ASSERT_EQ(out.size(), 5u);
  std::string error;
  ASSERT_TRUE(json_parse_string(out[0], "error", error));
  EXPECT_TRUE(error.starts_with("parse: unknown method"));
  ASSERT_TRUE(json_parse_string(out[1], "error", error));
  EXPECT_TRUE(error.starts_with("io:"));
  ASSERT_TRUE(json_parse_string(out[2], "error", error));
  EXPECT_TRUE(error.starts_with("parse:"));
  ASSERT_TRUE(json_parse_string(out[3], "error", error));
  EXPECT_TRUE(error.starts_with("parse: inline graph:"));
  EXPECT_TRUE(out[4].starts_with("{\"id\":\"ok\",\"ok\":true"));
}

TEST(Service, StatsReportsTheCounterCatalog) {
  const Graph g = make_grid(4, 4);
  Service service(test_options());
  std::vector<std::string> out;
  service.submit_line(solve_line("a", g), out);
  service.submit_line(solve_line("b", g), out);  // coalesces with a
  service.submit_line("{\"id\":\"s\",\"op\":\"stats\"}", out);
  service.drain(out);
  ASSERT_EQ(out.size(), 3u);
  std::uint64_t requests = 0, coalesced = 0, misses = 0;
  ASSERT_TRUE(json_parse_u64(out[2], "requests", requests));
  ASSERT_TRUE(json_parse_u64(out[2], "coalesced", coalesced));
  ASSERT_TRUE(json_parse_u64(out[2], "cache_misses", misses));
  EXPECT_EQ(requests, 3u);
  EXPECT_EQ(coalesced, 1u);
  EXPECT_EQ(misses, 2u);  // the follower's lookup also missed
  // The obs-catalog mirror matches what stats reported.
  EXPECT_EQ(service.metrics().counter(Counter::kSvcRequests), 3u);
  EXPECT_EQ(service.metrics().counter(Counter::kSvcCacheMisses), 2u);
}

TEST(Service, StatsV2ReportsGaugesAndLatencySummaries) {
  const Graph g = make_grid(4, 4);
  Service service(test_options());
  std::vector<std::string> out;
  service.submit_line(solve_line("a", g), out);
  service.submit_line(solve_line("b", g), out);  // coalesces with a
  service.submit_line("{\"id\":\"s\",\"op\":\"stats\"}", out);
  service.drain(out);
  ASSERT_EQ(out.size(), 3u);
  const std::string& stats = out[2];

  std::uint64_t value = 0;
  ASSERT_TRUE(json_parse_u64(stats, "stats_version", value));
  EXPECT_EQ(value, 5u);
  // Gauges read mid-batch: all three requests were queued, and exactly
  // one cold solve ran (the follower coalesced).
  ASSERT_TRUE(json_parse_u64(stats, "queue_depth", value));
  EXPECT_EQ(value, 3u);
  ASSERT_TRUE(json_parse_u64(stats, "inflight", value));
  EXPECT_EQ(value, 1u);
  ASSERT_TRUE(json_parse_u64(stats, "batch_size", value));
  EXPECT_EQ(value, 3u);
  // The *_count fields are deterministic: a stats op covers requests
  // strictly before it in the stream (here: a and b; one cold solve).
  ASSERT_TRUE(json_parse_u64(stats, "request_latency_count", value));
  EXPECT_EQ(value, 2u);
  ASSERT_TRUE(json_parse_u64(stats, "solve_latency_count", value));
  EXPECT_EQ(value, 1u);
  ASSERT_TRUE(json_parse_u64(stats, "queue_wait_count", value));
  EXPECT_EQ(value, 2u);
  // The wall-clock summaries are present and sane; their values are
  // explicitly not deterministic, so only shape is pinned.
  for (const char* key :
       {"request_latency_sum_us", "request_latency_p50_us",
        "request_latency_p90_us", "request_latency_p99_us",
        "solve_latency_p50_us", "queue_wait_p99_us"}) {
    double real = -1.0;
    ASSERT_TRUE(json_parse_double(stats, key, real)) << key;
    EXPECT_GE(real, 0.0) << key;
  }
}

TEST(Protocol, StatsFormatParsesKnownAndRejectsUnknown) {
  SvcRequest request;
  std::string error;
  ASSERT_TRUE(parse_request(R"({"op":"stats","format":"prom"})", request,
                            error));
  EXPECT_EQ(request.format, "prom");
  EXPECT_TRUE(parse_request(R"({"op":"stats","format":"json"})", request,
                            error));
  EXPECT_TRUE(parse_request(R"({"op":"stats"})", request, error));
  EXPECT_FALSE(parse_request(R"({"op":"stats","format":"xml"})", request,
                             error));
  EXPECT_TRUE(error.starts_with("parse: unknown stats format"));
}

TEST(Service, StatsPromFormatReturnsExposition) {
  const Graph g = make_grid(4, 4);
  Service service(test_options());
  std::vector<std::string> out;
  service.submit_line(solve_line("a", g), out);
  service.submit_line("{\"id\":\"p\",\"op\":\"stats\",\"format\":\"prom\"}",
                      out);
  service.drain(out);
  ASSERT_EQ(out.size(), 2u);
  std::string prom;
  ASSERT_TRUE(json_parse_string(out[1], "prom", prom));
  EXPECT_NE(prom.find("# TYPE gbis_svc_requests_total counter\n"
                      "gbis_svc_requests_total 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("gbis_svc_cache_misses_total 1\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE gbis_svc_queue_depth gauge\n"),
            std::string::npos);
  // Request "a" finalized before the stats op, so the latency
  // histogram exists — with its full cumulative-bucket tail.
  EXPECT_NE(prom.find("# TYPE gbis_svc_request_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(prom.find("gbis_svc_request_latency_us_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("gbis_svc_request_latency_us_count 1\n"),
            std::string::npos);
  // A prom response never carries the JSON stats block.
  std::uint64_t ignored = 0;
  EXPECT_FALSE(json_parse_u64(out[1], "stats_version", ignored));
}

// --- Method portfolio / quality ladder -------------------------------------

TEST(Protocol, QualityParsesKnownAndRejectsUnknown) {
  SvcRequest request;
  std::string error;
  for (const char* tier : {"fast", "balanced", "best"}) {
    ASSERT_TRUE(parse_request(std::string(R"({"op":"solve","path":"x",)") +
                                  "\"quality\":\"" + tier + "\"}",
                              request, error))
        << tier;
    EXPECT_EQ(request.quality, tier);
  }
  // Absent means "serve's default rung", not an error.
  ASSERT_TRUE(parse_request(R"({"op":"solve","path":"x"})", request, error));
  EXPECT_TRUE(request.quality.empty());
  // Present-but-invalid is a parse error, never a silent default.
  EXPECT_FALSE(parse_request(
      R"({"op":"solve","path":"x","quality":"fastest"})", request, error));
  EXPECT_TRUE(error.starts_with("parse: unknown quality \"fastest\""));
  EXPECT_FALSE(parse_request(R"({"op":"solve","path":"x","quality":3})",
                             request, error));
}

TEST(Service, QualityLadderIsThreadCountInvariant) {
  const Graph grid = make_grid(7, 5);
  const Graph ladder = make_ladder(9);
  Rng rng(3);
  const Graph gnp = make_gnp(48, gnp_p_for_degree(48, 3.0), rng);
  std::vector<std::string> lines;
  for (const char* tier : {"fast", "balanced", "best"}) {
    const std::string extra = std::string(",\"quality\":\"") + tier +
                              "\",\"want_sides\":true";
    lines.push_back(solve_line(std::string("g-") + tier, grid, extra));
    lines.push_back(solve_line(std::string("l-") + tier, ladder, extra));
    lines.push_back(solve_line(std::string("n-") + tier, gnp, extra));
  }
  lines.push_back(solve_line("again", gnp, ",\"quality\":\"fast\""));
  lines.push_back("{\"id\":\"s\",\"op\":\"stats\"}");
  const auto one = strip_timing(run_sequence(test_options(1), lines));
  const auto eight = strip_timing(run_sequence(test_options(8), lines));
  EXPECT_EQ(one, eight);
}

TEST(Service, QualityTiersCacheUnderDistinctIdentities) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.batch_size = 1;
  Service service(options);
  std::vector<std::string> out;
  service.submit_line(solve_line("f", g, ",\"quality\":\"fast\""), out);
  service.drain(out);
  service.submit_line(solve_line("b", g, ",\"quality\":\"best\""), out);
  service.drain(out);
  service.submit_line(solve_line("f2", g, ",\"quality\":\"fast\""), out);
  service.drain(out);
  ASSERT_EQ(out.size(), 3u);
  std::string cache;
  ASSERT_TRUE(json_parse_string(out[0], "cache", cache));
  EXPECT_EQ(cache, "miss");
  // A different rung is a different cached identity, not a hit on the
  // fast answer.
  ASSERT_TRUE(json_parse_string(out[1], "cache", cache));
  EXPECT_EQ(cache, "miss");
  // The same rung repeated is the first answer again (id and the
  // miss/hit marker aside, the payload is identical).
  ASSERT_TRUE(json_parse_string(out[2], "cache", cache));
  EXPECT_EQ(cache, "hit");
  std::uint64_t cold_cut = 0, warm_cut = 0;
  std::string cold_fp, warm_fp;
  ASSERT_TRUE(json_parse_u64(out[0], "cut", cold_cut));
  ASSERT_TRUE(json_parse_u64(out[2], "cut", warm_cut));
  ASSERT_TRUE(json_parse_string(out[0], "fingerprint", cold_fp));
  ASSERT_TRUE(json_parse_string(out[2], "fingerprint", warm_fp));
  EXPECT_EQ(warm_cut, cold_cut);
  EXPECT_EQ(warm_fp, cold_fp);
}

TEST(Service, StatsV4ReportsQualityAndSolveByCounters) {
  const Graph g = make_grid(6, 6);
  Service service(test_options());
  std::vector<std::string> out;
  service.submit_line(solve_line("f", g, ",\"quality\":\"fast\""), out);
  service.submit_line(solve_line("b", g, ",\"quality\":\"balanced\""), out);
  service.submit_line("{\"id\":\"s\",\"op\":\"stats\"}", out);
  service.drain(out);
  ASSERT_EQ(out.size(), 3u);
  const std::string& stats = out[2];
  std::uint64_t value = 0;
  ASSERT_TRUE(json_parse_u64(stats, "quality_fast", value));
  EXPECT_EQ(value, 1u);
  ASSERT_TRUE(json_parse_u64(stats, "quality_balanced", value));
  EXPECT_EQ(value, 1u);
  ASSERT_TRUE(json_parse_u64(stats, "quality_best", value));
  EXPECT_EQ(value, 0u);
  // The fast rung is greedy+hill-climb by construction, so its cold
  // solve lands on exactly that per-method counter; across the board
  // the solve_by.* counters partition the ok cold solves.
  ASSERT_TRUE(json_parse_u64(stats, "solve_by_greedy_hc", value));
  EXPECT_EQ(value, 1u);
  std::uint64_t total = 0;
  for (const char* key :
       {"solve_by_ckl", "solve_by_csa", "solve_by_kl", "solve_by_sa",
        "solve_by_mlkl", "solve_by_path", "solve_by_greedy_hc",
        "solve_by_other"}) {
    ASSERT_TRUE(json_parse_u64(stats, key, value)) << key;
    total += value;
  }
  EXPECT_EQ(total, 2u);  // two cold ok solves, nothing double-counted
  // The obs catalog mirrors what stats reported.
  EXPECT_EQ(service.metrics().counter(Counter::kSvcQualityFast), 1u);
  EXPECT_EQ(service.metrics().counter(Counter::kSvcSolveByGreedyHc), 1u);
}

TEST(Service, AccessLogRecordsOutcomesInStreamOrder) {
  const Graph g = make_grid(6, 6);
  const std::string path = testing::TempDir() + "svc_access_content.jsonl";
  std::remove(path.c_str());  // the log appends; start fresh
  SvcOptions options = test_options();
  options.access_log_path = path;
  {
    Service service(options);
    ASSERT_TRUE(service.access_log_ok());
    std::vector<std::string> out;
    service.submit_line(solve_line("a", g), out);
    service.submit_line(solve_line("b", g), out);  // coalesces
    service.submit_line("{\"id\":\"s\",\"op\":\"stats\"}", out);
    service.submit_line("{\"id\":\"junk\" nope", out);
    service.drain(out);
  }  // destruction closes (and flushes) the log

  std::istringstream in(read_file(path));
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);

  std::uint64_t seq = 99;
  std::string text;
  std::int64_t cut = 0;
  ASSERT_TRUE(json_parse_u64(lines[0], "seq", seq));
  EXPECT_EQ(seq, 0u);
  ASSERT_TRUE(json_parse_string(lines[0], "op", text));
  EXPECT_EQ(text, "solve");
  ASSERT_TRUE(json_parse_string(lines[0], "status", text));
  EXPECT_EQ(text, "ok");
  ASSERT_TRUE(json_parse_string(lines[0], "cache", text));
  EXPECT_EQ(text, "miss");
  EXPECT_TRUE(json_parse_string(lines[0], "fingerprint", text));
  ASSERT_TRUE(json_parse_i64(lines[0], "cut", cut));
  EXPECT_EQ(cut, 6);

  ASSERT_TRUE(json_parse_string(lines[1], "cache", text));
  EXPECT_EQ(text, "coalesced");
  std::uint64_t t_solve = 1;
  ASSERT_TRUE(json_parse_u64(lines[1], "t_solve_us", t_solve));
  EXPECT_EQ(t_solve, 0u);  // the follower never solved

  ASSERT_TRUE(json_parse_string(lines[2], "op", text));
  EXPECT_EQ(text, "stats");
  EXPECT_FALSE(json_parse_string(lines[2], "cache", text));

  ASSERT_TRUE(json_parse_string(lines[3], "status", text));
  EXPECT_EQ(text, "error");
  EXPECT_TRUE(json_parse_string(lines[3], "error", text));
}

TEST(Service, AccessLogIsThreadCountInvariantAfterTimingStrip) {
  const Graph grid = make_grid(7, 5);
  const Graph ladder = make_ladder(9);
  Rng rng(3);
  const Graph gnp = make_gnp(48, gnp_p_for_degree(48, 3.0), rng);
  std::vector<std::string> lines;
  lines.push_back(solve_line("a", grid));
  lines.push_back(solve_line("b", ladder));
  lines.push_back(solve_line("c", gnp, ",\"budget\":5"));
  lines.push_back("{\"id\":\"s\",\"op\":\"stats\"}");
  lines.push_back(solve_line("d", grid));  // cache hit
  lines.push_back("{\"id\":\"junk\" nope");

  const auto log_at = [&](unsigned threads) {
    const std::string path = testing::TempDir() + "svc_access_t" +
                             std::to_string(threads) + ".jsonl";
    std::remove(path.c_str());
    SvcOptions options = test_options(threads);
    options.access_log_path = path;
    {
      Service service(options);
      std::vector<std::string> out;
      for (const std::string& line : lines) {
        service.submit_line(line, out);
        if (service.pending() >= options.batch_size)
          service.process_batch(out);
      }
      service.drain(out);
    }
    return strip_timing(read_file(path));
  };
  const std::string one = log_at(1);
  const std::string eight = log_at(8);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, eight);
  // The strip really removed the wall-clock fields and nothing else.
  EXPECT_EQ(one.find("_us\":"), std::string::npos);
  EXPECT_NE(one.find("\"fingerprint\":"), std::string::npos);
}

TEST(Service, SlowSamplingKeepsADeterministicBoundedSubset) {
  const Graph g = make_grid(6, 6);
  const auto seqs_at = [&](unsigned threads) {
    SvcOptions options = test_options(threads);
    options.slow_ms = 0;  // sample every request: the set is testable
    options.slow_capacity = 4;
    Service service(options);
    std::vector<std::string> out;
    for (int i = 0; i < 10; ++i) {
      // Distinct seeds: ten cold solves, no coalescing.
      service.submit_line(
          solve_line("r" + std::to_string(i), g,
                     ",\"seed\":" + std::to_string(100 + i)),
          out);
    }
    service.drain(out);
    EXPECT_LE(service.slow_samples().size(), 4u);
    std::vector<std::uint64_t> seqs;
    for (const SvcSlowSample& sample : service.slow_samples()) {
      seqs.push_back(sample.seq);
      EXPECT_EQ(sample.status, "ok");
    }
    return seqs;
  };
  const auto one = seqs_at(1);
  const auto eight = seqs_at(8);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, eight);  // which requests survive is seq-determined
  for (std::size_t i = 1; i < one.size(); ++i) {
    EXPECT_LT(one[i - 1], one[i]);
  }
}

TEST(Service, NegativeSlowMsDisablesSampling) {
  const Graph g = make_grid(4, 4);
  Service service(test_options());  // slow_ms default -1
  std::vector<std::string> out;
  service.submit_line(solve_line("a", g), out);
  service.drain(out);
  EXPECT_TRUE(service.slow_samples().empty());
}

TEST(SvcOptionsEnv, OverlaysTelemetryKnobsAndKeepsDefaultsOnMalformed) {
  ::setenv("GBIS_SVC_CACHE_MB", "8", 1);
  ::setenv("GBIS_SVC_ACCESS_LOG", "/tmp/al.jsonl", 1);
  ::setenv("GBIS_SVC_SLOW_MS", "2.5", 1);
  SvcOptions options = svc_options_from_env(SvcOptions{});
  EXPECT_EQ(options.cache_bytes, 8ull << 20);
  EXPECT_EQ(options.access_log_path, "/tmp/al.jsonl");
  EXPECT_DOUBLE_EQ(options.slow_ms, 2.5);

  ::setenv("GBIS_SVC_SLOW_MS", "fast", 1);  // malformed: warn, keep off
  ::setenv("GBIS_SVC_ACCESS_LOG", "", 1);   // empty path is malformed too
  options = svc_options_from_env(SvcOptions{});
  EXPECT_DOUBLE_EQ(options.slow_ms, -1.0);
  EXPECT_TRUE(options.access_log_path.empty());

  ::setenv("GBIS_SVC_SLOW_MS", "-3", 1);  // sampling has no negative knob
  options = svc_options_from_env(SvcOptions{});
  EXPECT_DOUBLE_EQ(options.slow_ms, -1.0);

  ::unsetenv("GBIS_SVC_CACHE_MB");
  ::unsetenv("GBIS_SVC_ACCESS_LOG");
  ::unsetenv("GBIS_SVC_SLOW_MS");
}

TEST(Service, UnopenableAccessLogReportsNotOk) {
  SvcOptions options = test_options();
  options.access_log_path =
      testing::TempDir() + "no_such_dir_svc/log.jsonl";
  Service service(options);
  EXPECT_FALSE(service.access_log_ok());
  Service plain(test_options());  // no log configured: trivially ok
  EXPECT_TRUE(plain.access_log_ok());
}

// --- Listener (svc/listener): sockets in front of the service -------------

// The client side runs on plain blocking sockets in helper threads;
// the listener event loop is pumped on the test thread, exactly the
// single-driver arrangement the CLI uses.

int connect_tcp_client(const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(
      std::stoul(endpoint.substr(colon + 1))));
  ::inet_pton(AF_INET, endpoint.substr(0, colon).c_str(), &addr.sin_addr);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  return fd;
}

int connect_unix_client(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  return fd;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

std::string recv_to_eof(int fd) {
  std::string out;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return out;
    out.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string recv_line(int fd) {
  std::string out;
  char c = 0;
  while (::recv(fd, &c, 1, 0) == 1) {
    if (c == '\n') break;
    out += c;
  }
  return out;
}

/// Sends `lines`, half-closes, and returns the full response stream
/// (the server closes once everything owed has been answered).
std::string client_session(int fd, const std::vector<std::string>& lines) {
  std::string payload;
  for (const std::string& line : lines) {
    payload += line;
    payload += '\n';
  }
  send_all(fd, payload);
  ::shutdown(fd, SHUT_WR);
  std::string out = recv_to_eof(fd);
  ::close(fd);
  return out;
}

/// Pumps the listener's event loop on the calling thread until `done`
/// (or a generous cycle bound — a failure, not a hang).
template <typename Done>
void pump_until(Listener& listener, Done done, int max_cycles = 20000) {
  for (int i = 0; i < max_cycles && !done(); ++i) {
    listener.poll_once(/*timeout_ms=*/5);
  }
  EXPECT_TRUE(done()) << "listener pump timed out";
}

std::string joined(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

TEST(Listener, TcpAndUnixRoundTripsMatchTheStdioReplay) {
  const Graph g = make_grid(6, 6);
  // Distinct seeds everywhere: every solve is a cold miss on both the
  // socket service and the per-client stdio replay, so batching
  // boundaries (which TCP segmentation can shift) cannot change any
  // cache label.
  const std::vector<std::string> tcp_lines = {
      "{\"id\":\"p\",\"op\":\"ping\"}",
      solve_line("t1", g, ",\"seed\":501"),
      solve_line("t2", g, ",\"seed\":502,\"want_sides\":true"),
  };
  const std::vector<std::string> unix_lines = {
      solve_line("u1", g, ",\"seed\":601"),
      "{\"id\":\"q\",\"op\":\"ping\"}",
      solve_line("u2", g, ",\"seed\":602"),
  };
  const std::string tcp_expected = joined(run_sequence(test_options(),
                                                       tcp_lines));
  const std::string unix_expected = joined(run_sequence(test_options(),
                                                        unix_lines));

  Service service(test_options());
  ListenerOptions lopt;
  lopt.tcp_endpoint = "127.0.0.1:0";
  lopt.unix_path = testing::TempDir() + "gbis_rt.sock";
  lopt.ready_file = testing::TempDir() + "gbis_rt.ready";
  Listener listener(service, lopt);
  listener.start();
  EXPECT_NE(listener.tcp_endpoint().find("127.0.0.1:"), std::string::npos);
  EXPECT_NE(listener.tcp_endpoint(), "127.0.0.1:0") << "real port expected";
  const std::string ready = read_file(lopt.ready_file);
  EXPECT_NE(ready.find("tcp " + listener.tcp_endpoint()), std::string::npos);
  EXPECT_NE(ready.find("unix " + lopt.unix_path), std::string::npos);

  std::string tcp_stream, unix_stream;
  std::atomic<int> done{0};
  std::thread tcp_client([&] {
    tcp_stream =
        client_session(connect_tcp_client(listener.tcp_endpoint()),
                       tcp_lines);
    ++done;
  });
  std::thread unix_client([&] {
    unix_stream = client_session(connect_unix_client(lopt.unix_path),
                                 unix_lines);
    ++done;
  });
  pump_until(listener, [&] { return done.load() == 2; });
  tcp_client.join();
  unix_client.join();

  EXPECT_EQ(tcp_stream, tcp_expected);
  EXPECT_EQ(unix_stream, unix_expected);
  pump_until(listener, [&] { return listener.connection_count() == 0; });
  EXPECT_EQ(service.metrics().counter(Counter::kSvcConnAccepted), 2u);
  EXPECT_EQ(service.metrics().counter(Counter::kSvcConnClosed), 2u);
  EXPECT_EQ(service.metrics().gauge(Gauge::kSvcConnections), 0);
}

TEST(Listener, ManyConcurrentClientsKeepPerConnectionDeterminism) {
  // The acceptance bar: >= 64 concurrent loopback clients, each
  // connection's response stream byte-identical to a stdio replay of
  // its own requests, at 1 worker thread and at 8.
  constexpr int kClients = 64;
  const Graph g = make_grid(4, 4);

  std::vector<std::vector<std::string>> requests(kClients);
  std::vector<std::string> expected(kClients);
  for (int c = 0; c < kClients; ++c) {
    const std::string tag = std::to_string(c);
    requests[c] = {
        solve_line("c" + tag + "a", g,
                   ",\"seed\":" + std::to_string(10000 + 10 * c)),
        "{\"id\":\"c" + tag + "p\",\"op\":\"ping\"}",
        solve_line("c" + tag + "b", g,
                   ",\"seed\":" + std::to_string(10001 + 10 * c)),
    };
    expected[c] = joined(run_sequence(test_options(), requests[c]));
  }

  const auto streams_at = [&](unsigned threads) {
    Service service(test_options(threads));
    ListenerOptions lopt;
    lopt.unix_path = testing::TempDir() + "gbis_many.sock";
    Listener listener(service, lopt);
    listener.start();
    std::vector<std::string> streams(kClients);
    std::atomic<int> done{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        streams[c] = client_session(connect_unix_client(lopt.unix_path),
                                    requests[c]);
        ++done;
      });
    }
    pump_until(listener, [&] { return done.load() == kClients; }, 200000);
    for (std::thread& t : clients) t.join();
    EXPECT_EQ(service.metrics().counter(Counter::kSvcConnAccepted),
              static_cast<std::uint64_t>(kClients));
    return streams;
  };

  const auto one = streams_at(1);
  const auto eight = streams_at(8);
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(one[c], expected[c]) << "client " << c << " (1 thread)";
    EXPECT_EQ(eight[c], expected[c]) << "client " << c << " (8 threads)";
  }
}

TEST(Listener, GarbageMidStreamAnswersErrorsAndKeepsTheConnection) {
  Service service(test_options());
  ListenerOptions lopt;
  lopt.unix_path = testing::TempDir() + "gbis_garbage.sock";
  Listener listener(service, lopt);
  listener.start();

  const std::vector<std::string> lines = {
      "{\"id\":\"g1\",\"op\":\"ping\"}",
      "!!!! not json at all \x01\x02 ****",
      R"({"id":"x"op":"ping","budget":1})",  // the json_lite regression
      R"({"id":"neg","op":"solve","inline":"2 1\n0 1\n","budget":-1})",
      "{\"id\":\"g2\",\"op\":\"ping\"}",
  };
  std::string stream;
  std::atomic<bool> done{false};
  std::thread client([&] {
    stream = client_session(connect_unix_client(lopt.unix_path), lines);
    done = true;
  });
  pump_until(listener, [&] { return done.load(); });
  client.join();

  std::istringstream in(stream);
  std::vector<std::string> out;
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_TRUE(out[0].starts_with("{\"id\":\"g1\",\"ok\":true"));
  std::string error;
  ASSERT_TRUE(json_parse_string(out[1], "error", error));
  EXPECT_TRUE(error.starts_with("parse:"));
  ASSERT_TRUE(json_parse_string(out[2], "error", error));
  EXPECT_TRUE(error.starts_with("parse: malformed request line"));
  ASSERT_TRUE(json_parse_string(out[3], "error", error));
  EXPECT_TRUE(error.starts_with("parse:")) << "budget:-1 must not wrap";
  EXPECT_TRUE(out[4].starts_with("{\"id\":\"g2\",\"ok\":true"));
}

TEST(Listener, OverlongLinesRejectAndResync) {
  Service service(test_options());
  ListenerOptions lopt;
  lopt.unix_path = testing::TempDir() + "gbis_overlong.sock";
  lopt.max_line_bytes = 64;
  Listener listener(service, lopt);
  listener.start();

  std::string stream;
  std::atomic<bool> done{false};
  std::thread client([&] {
    const int fd = connect_unix_client(lopt.unix_path);
    send_all(fd, std::string(200, 'x') + "\n" +
                     "{\"id\":\"after\",\"op\":\"ping\"}\n");
    ::shutdown(fd, SHUT_WR);
    stream = recv_to_eof(fd);
    ::close(fd);
    done = true;
  });
  pump_until(listener, [&] { return done.load(); });
  client.join();

  std::istringstream in(stream);
  std::vector<std::string> out;
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  ASSERT_EQ(out.size(), 2u);
  std::string error;
  ASSERT_TRUE(json_parse_string(out[0], "error", error));
  EXPECT_EQ(error, "parse: request line exceeds 64 bytes");
  EXPECT_TRUE(out[1].starts_with("{\"id\":\"after\",\"ok\":true"))
      << "the connection must survive an overlong line";
}

TEST(Listener, PerConnectionQuotaRejectsJumpTheStream) {
  SvcOptions options = test_options();
  options.max_queue = 100;
  Service service(options);
  ListenerOptions lopt;
  lopt.unix_path = testing::TempDir() + "gbis_quota.sock";
  lopt.conn_request_quota = 2;
  Listener listener(service, lopt);
  listener.start();

  // One small write on a unix socket: the four lines arrive in one
  // read sweep, so q1/q2 are in flight when q3/q4 hit the quota.
  const std::vector<std::string> lines = {
      "{\"id\":\"q1\",\"op\":\"ping\"}",
      "{\"id\":\"q2\",\"op\":\"ping\"}",
      "{\"id\":\"q3\",\"op\":\"ping\"}",
      "{\"id\":\"q4\",\"op\":\"ping\"}",
  };
  std::string stream;
  std::atomic<bool> done{false};
  std::thread client([&] {
    stream = client_session(connect_unix_client(lopt.unix_path), lines);
    done = true;
  });
  pump_until(listener, [&] { return done.load(); });
  client.join();

  std::istringstream in(stream);
  std::vector<std::string> out;
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  ASSERT_EQ(out.size(), 4u);
  // Quota rejects are emitted at read time and jump the arrival-order
  // stream, exactly like the service's queue-full reject.
  std::string error;
  EXPECT_TRUE(out[0].starts_with("{\"id\":\"q3\",\"ok\":false"));
  ASSERT_TRUE(json_parse_string(out[0], "error", error));
  EXPECT_TRUE(error.starts_with("rejected: connection request quota"));
  EXPECT_TRUE(out[1].starts_with("{\"id\":\"q4\",\"ok\":false"));
  EXPECT_TRUE(out[2].starts_with("{\"id\":\"q1\",\"ok\":true"));
  EXPECT_TRUE(out[3].starts_with("{\"id\":\"q2\",\"ok\":true"));
  EXPECT_EQ(service.metrics().counter(Counter::kSvcQuotaRejected), 2u);
}

TEST(Listener, ConnectionLimitShedsExtraClientsWithAReason) {
  Service service(test_options());
  ListenerOptions lopt;
  lopt.unix_path = testing::TempDir() + "gbis_limit.sock";
  lopt.max_connections = 1;
  Listener listener(service, lopt);
  listener.start();

  std::atomic<bool> first_served{false}, second_done{false};
  std::string reject_stream;
  std::thread first([&] {
    const int fd = connect_unix_client(lopt.unix_path);
    send_all(fd, "{\"id\":\"a\",\"op\":\"ping\"}\n");
    const std::string line = recv_line(fd);
    EXPECT_TRUE(line.starts_with("{\"id\":\"a\",\"ok\":true"));
    first_served = true;
    while (!second_done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ::close(fd);
  });
  pump_until(listener, [&] { return first_served.load(); });

  std::thread second([&] {
    const int fd = connect_unix_client(lopt.unix_path);
    reject_stream = recv_to_eof(fd);  // one reject line, then EOF
    ::close(fd);
    second_done = true;
  });
  pump_until(listener, [&] { return second_done.load(); });
  first.join();
  second.join();

  std::string error;
  ASSERT_TRUE(json_parse_string(reject_stream, "error", error));
  EXPECT_TRUE(error.starts_with("rejected: connection limit"));
  EXPECT_EQ(service.metrics().counter(Counter::kSvcConnRejected), 1u);
  EXPECT_EQ(service.metrics().counter(Counter::kSvcConnAccepted), 1u);
  pump_until(listener, [&] { return listener.connection_count() == 0; });
}

TEST(Listener, SlowClientsAreDisconnectedAndCounted) {
  // A client that never reads: responses pile up in the connection's
  // write buffer (the peer's tiny receive window stops the kernel from
  // draining it) until the backlog cap / stall clock sheds it.
  const Graph big = make_grid(100, 200);  // 20000-char sides payload
  const std::string graph_path = testing::TempDir() + "gbis_slow.graph";
  {
    std::ofstream out(graph_path);
    write_edge_list(out, big);
  }
  Service service(test_options());
  ListenerOptions lopt;
  // A unix socket's send buffer is a fixed kernel bound (no TCP-style
  // auto-tuning), so ~800KB of unread responses reliably lands in the
  // connection's write buffer and trips the backlog cap.
  lopt.unix_path = testing::TempDir() + "gbis_slowclient.sock";
  lopt.max_write_buffer = 16 * 1024;
  lopt.write_timeout_seconds = 0.2;
  Listener listener(service, lopt);
  listener.start();

  std::atomic<bool> sent{false}, closed{false};
  std::thread client([&] {
    const int fd = connect_unix_client(lopt.unix_path);
    std::string payload;
    for (int i = 0; i < 40; ++i) {
      payload += "{\"id\":\"s" + std::to_string(i) +
                 "\",\"op\":\"solve\",\"path\":";
      append_json_string(payload, graph_path);
      payload += ",\"method\":\"random\",\"budget\":1,\"want_sides\":true,"
                 "\"seed\":" +
                 std::to_string(7000 + i) + "}\n";
    }
    send_all(fd, payload);
    sent = true;
    // Never read: wait for the server to shed us.
    while (!closed.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ::close(fd);
  });
  pump_until(listener, [&] {
    return service.metrics().counter(Counter::kSvcConnSlowClosed) >= 1;
  });
  closed = true;
  client.join();
  EXPECT_EQ(service.metrics().counter(Counter::kSvcConnSlowClosed), 1u);
  EXPECT_EQ(service.metrics().gauge(Gauge::kSvcConnections), 0);
  EXPECT_TRUE(sent.load());
}

TEST(Listener, DrainAnswersAdmittedRequestsAsShutdownAndClosesAll) {
  const Graph g = make_grid(6, 6);
  Service service(test_options());
  ListenerOptions lopt;
  lopt.unix_path = testing::TempDir() + "gbis_drain.sock";
  Listener listener(service, lopt);
  listener.start();

  // The stop flag is already up when the requests arrive — the
  // SIGTERM-during-a-burst shape. Everything admitted must still be
  // answered (as "shutdown" errors), flushed, and closed.
  std::atomic<bool> stop{true};
  std::string stream;
  std::atomic<bool> done{false};
  std::thread client([&] {
    stream = client_session(
        connect_unix_client(lopt.unix_path),
        {solve_line("d1", g, ",\"seed\":801"),
         solve_line("d2", g, ",\"seed\":802")});
    done = true;
  });
  for (int i = 0; i < 20000 && !done.load(); ++i) {
    listener.poll_once(/*timeout_ms=*/5, &stop);
  }
  ASSERT_TRUE(done.load());
  client.join();
  listener.drain(&stop);

  std::istringstream in(stream);
  std::vector<std::string> out;
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  ASSERT_EQ(out.size(), 2u);
  for (const std::string& response : out) {
    std::string error;
    ASSERT_TRUE(json_parse_string(response, "error", error));
    EXPECT_TRUE(error.starts_with("shutdown"));
  }
  EXPECT_EQ(listener.connection_count(), 0u);
  // The drain unlinked the socket file.
  EXPECT_FALSE(std::ifstream(lopt.unix_path).good());
}

TEST(Service, CacheEvictionsSurfaceInStats) {
  const Graph a = make_grid(5, 5);
  const Graph b = make_grid(5, 6);
  const Graph c = make_grid(5, 7);
  SvcOptions options = test_options();
  options.batch_size = 1;
  options.cache_bytes = 400;  // roughly two 25-30 vertex entries
  Service service(options);
  std::vector<std::string> out;
  for (const auto* g : {&a, &b, &c, &a}) {
    service.submit_line(solve_line("x", *g), out);
    service.drain(out);
  }
  EXPECT_GT(service.cache_stats().evictions, 0u);
  EXPECT_EQ(service.metrics().counter(Counter::kSvcCacheEvictions),
            service.cache_stats().evictions);
}

// --- Durable cache store (svc/cache_store) ---------------------------------

SvcCacheKey store_key(std::uint64_t fingerprint, std::uint64_t seed = 7) {
  SvcCacheKey key;
  key.fingerprint = fingerprint;
  key.method_key = SvcCacheKey::kPortfolio;
  key.budget = 2;
  key.seed = seed;
  key.deadline_bits = 0;
  return key;
}

SvcCacheValue store_value(Weight cut) {
  SvcCacheValue value;
  value.cut = cut;
  value.method = "CKL";
  value.trials_ok = 2;
  value.trials_degraded = 0;
  value.sides = {0, 1, 1, 0};
  return value;
}

std::string temp_journal(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(SvcCacheStore, EntryLinesRoundTripThroughTheSharedScanner) {
  const SvcCacheKey key = store_key(0xdeadbeefcafef00dull, 99);
  const SvcCacheValue value = store_value(12);
  const std::string line = SvcCacheStore::encode_entry(key, value);
  EXPECT_TRUE(json_object_valid(line));
  SvcCacheKey decoded_key;
  SvcCacheValue decoded_value;
  ASSERT_TRUE(SvcCacheStore::decode_entry(line, decoded_key, decoded_value));
  EXPECT_TRUE(decoded_key == key);
  EXPECT_EQ(decoded_value.cut, value.cut);
  EXPECT_EQ(decoded_value.method, value.method);
  EXPECT_EQ(decoded_value.trials_ok, value.trials_ok);
  EXPECT_EQ(decoded_value.sides, value.sides);
}

TEST(SvcCacheStore, RestoreReplaysAppendsAndPreservesRecency) {
  const std::string path = temp_journal("svc_store_roundtrip.jsonl");
  {
    SvcResultCache cache(1 << 20);
    SvcCacheStore store(path);
    SvcCacheRestore report;
    ASSERT_TRUE(store.open_and_restore(cache, nullptr, report));
    EXPECT_EQ(report.entries_restored, 0u);
    for (std::uint64_t i = 0; i < 4; ++i) {
      EXPECT_GT(store.append(store_key(i), store_value(Weight(10 + i))), 0u);
    }
  }
  // A tiny second cache: replay preserves append (recency) order, so
  // the OLDEST entries are the ones evicted when the budget is small.
  SvcResultCache probe(1 << 20);
  probe.insert(store_key(0), store_value(0));
  SvcResultCache small(3 * probe.stats().bytes);
  SvcCacheStore warm(path);
  SvcCacheRestore report;
  ASSERT_TRUE(warm.open_and_restore(small, nullptr, report));
  EXPECT_EQ(report.entries_restored, 4u);
  EXPECT_EQ(report.lines_dropped, 0u);
  EXPECT_EQ(small.lookup(store_key(0)), nullptr);  // oldest, evicted
  const SvcCacheValue* newest = small.lookup(store_key(3));
  ASSERT_NE(newest, nullptr);
  EXPECT_EQ(newest->cut, 13);
  EXPECT_EQ(newest->sides, (std::vector<std::uint8_t>{0, 1, 1, 0}));
}

TEST(SvcCacheStore, CorruptionCorpusFallsBackToTheLongestValidPrefix) {
  const SvcCacheKey key_a = store_key(1), key_b = store_key(2);
  const std::string good_a =
      SvcCacheStore::encode_entry(key_a, store_value(10));
  const std::string good_b =
      SvcCacheStore::encode_entry(key_b, store_value(20));
  const std::string header = SvcCacheStore::header_line();

  struct Case {
    const char* name;
    std::string tail;        // appended after two good entries
    std::uint64_t restored;  // entries the warm start must recover
  };
  std::string flipped = good_b;
  flipped[flipped.find("\"cut\":") + 6] ^= 1;  // payload byte under the CRC
  const std::vector<Case> corpus = {
      {"truncated_line", good_b.substr(0, good_b.size() / 2), 2},
      {"bad_crc", flipped, 2},
      {"garbage_bytes", "\x01\x02binary junk not json", 2},
      {"valid_json_wrong_shape", "{\"type\":\"not_an_entry\"}", 2},
  };
  for (const Case& test_case : corpus) {
    const std::string path =
        temp_journal(std::string("svc_store_") + test_case.name + ".jsonl");
    {
      std::ofstream out(path);
      out << header << '\n' << good_a << '\n' << good_b << '\n'
          << test_case.tail << '\n';
    }
    SvcResultCache cache(1 << 20);
    SvcCacheStore store(path);
    SvcCacheRestore report;
    ASSERT_TRUE(store.open_and_restore(cache, nullptr, report)) << test_case.name;
    EXPECT_EQ(report.entries_restored, test_case.restored) << test_case.name;
    EXPECT_GE(report.lines_dropped, 1u) << test_case.name;
    EXPECT_TRUE(report.compacted) << test_case.name;  // damage rewritten away
    // The valid prefix is served; the damaged line never is.
    ASSERT_NE(cache.lookup(key_a), nullptr) << test_case.name;
    const SvcCacheValue* b = cache.lookup(key_b);
    ASSERT_NE(b, nullptr) << test_case.name;
    EXPECT_EQ(b->cut, 20) << test_case.name;
    // And the rewritten journal is fully valid again.
    SvcResultCache again(1 << 20);
    SvcCacheStore reread(path);
    SvcCacheRestore second;
    ASSERT_TRUE(reread.open_and_restore(again, nullptr, second)) << test_case.name;
    EXPECT_EQ(second.entries_restored, test_case.restored) << test_case.name;
    EXPECT_EQ(second.lines_dropped, 0u) << test_case.name;
  }
}

TEST(SvcCacheStore, ForeignOrWrongVersionHeaderRestoresNothing) {
  // Versions 1-3 all restore (3 is the current format; 2 lacks the
  // quality key, 1 is cache-entry lines only); version 4 is from the
  // future and must not.
  for (const char* header :
       {"{\"type\":\"svc_cache\",\"version\":4}",
        "{\"type\":\"checkpoint\",\"version\":1}", "not a header at all"}) {
    const std::string path = temp_journal("svc_store_header.jsonl");
    {
      std::ofstream out(path);
      out << header << '\n'
          << SvcCacheStore::encode_entry(store_key(1), store_value(10))
          << '\n';
    }
    SvcResultCache cache(1 << 20);
    SvcCacheStore store(path);
    SvcCacheRestore report;
    ASSERT_TRUE(store.open_and_restore(cache, nullptr, report)) << header;
    EXPECT_EQ(report.entries_restored, 0u) << header;
    EXPECT_GT(report.lines_dropped, 0u) << header;
    EXPECT_EQ(cache.stats().entries, 0u) << header;
  }
}

TEST(SvcCacheStore, MissingFileIsAFreshJournal) {
  const std::string path = temp_journal("svc_store_fresh.jsonl");
  SvcResultCache cache(1 << 20);
  SvcCacheStore store(path);
  SvcCacheRestore report;
  ASSERT_TRUE(store.open_and_restore(cache, nullptr, report));
  EXPECT_EQ(report.entries_restored, 0u);
  EXPECT_EQ(report.lines_dropped, 0u);
  EXPECT_TRUE(store.ok());
  EXPECT_GT(store.append(store_key(1), store_value(10)), 0u);
  // The header went down first, so a restart replays cleanly.
  const std::string text = read_file(path);
  EXPECT_TRUE(text.starts_with(SvcCacheStore::header_line()));
}

TEST(SvcCacheStore, CompactionShedsDeadEntries) {
  const std::string path = temp_journal("svc_store_compact.jsonl");
  SvcResultCache cache(1 << 20);
  SvcCacheStore store(path);
  SvcCacheRestore report;
  ASSERT_TRUE(store.open_and_restore(cache, nullptr, report));
  // Refresh one key far past the 4*live+64 threshold: the journal
  // carries dead weight the resident cache no longer holds.
  for (int i = 0; i < 100; ++i) {
    cache.insert(store_key(1), store_value(Weight(i)));
    ASSERT_GT(store.append(store_key(1), store_value(Weight(i))), 0u);
  }
  EXPECT_EQ(store.file_entries(), 100u);
  EXPECT_GT(store.maybe_compact(cache, nullptr), 0u);
  EXPECT_EQ(store.file_entries(), 1u);
  EXPECT_EQ(store.maybe_compact(cache, nullptr), 0u);  // already compact
  // The survivor is the live value.
  SvcResultCache warm(1 << 20);
  SvcCacheStore reread(path);
  SvcCacheRestore second;
  ASSERT_TRUE(reread.open_and_restore(warm, nullptr, second));
  EXPECT_EQ(second.entries_restored, 1u);
  const SvcCacheValue* live = warm.lookup(store_key(1));
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->cut, 99);
}

TEST(SvcCacheStore, UnopenablePathReportsFalse) {
  SvcResultCache cache(1 << 20);
  SvcCacheStore store(testing::TempDir() + "no_such_dir_store/j.jsonl");
  SvcCacheRestore report;
  EXPECT_FALSE(store.open_and_restore(cache, nullptr, report));
  EXPECT_FALSE(store.ok());
}

// --- Warm restart ----------------------------------------------------------

TEST(Service, WarmRestartServesByteIdenticalHits) {
  const std::string path = temp_journal("svc_warm_restart.jsonl");
  const Graph grid = make_grid(6, 6);
  const Graph ladder = make_ladder(9);
  SvcOptions options = test_options();
  options.cache_file = path;
  options.batch_size = 2;  // the repeats land in a later batch: hits,
                           // not within-batch coalesces

  // Cold service: solve each graph, then repeat it so the pre-crash
  // stream contains the canonical hit bytes for each solve identity.
  std::vector<std::string> cold = run_sequence(
      options, {solve_line("w1", grid, ",\"want_sides\":true"),
                solve_line("w2", ladder), solve_line("w1", grid,
                ",\"want_sides\":true"), solve_line("w2", ladder)});
  ASSERT_EQ(cold.size(), 4u);
  std::string disposition;
  ASSERT_TRUE(json_parse_string(cold[2], "cache", disposition));
  ASSERT_EQ(disposition, "hit");

  // Warm service (fresh process stand-in): the same requests answer as
  // hits with bytes identical to the pre-restart hit responses.
  Service warm(options);
  ASSERT_TRUE(warm.cache_store_ok());
  EXPECT_EQ(warm.metrics().counter(Counter::kSvcCacheRestored), 2u);
  EXPECT_EQ(warm.cache_stats().entries, 2u);
  std::vector<std::string> out;
  warm.submit_line(solve_line("w1", grid, ",\"want_sides\":true"), out);
  warm.submit_line(solve_line("w2", ladder), out);
  warm.drain(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], cold[2]);
  EXPECT_EQ(out[1], cold[3]);
  EXPECT_EQ(warm.cache_stats().hits, 2u);
}

TEST(Service, UnopenableCacheJournalReportsNotOk) {
  SvcOptions options = test_options();
  options.cache_file = testing::TempDir() + "no_such_dir_warm/j.jsonl";
  Service service(options);
  EXPECT_FALSE(service.cache_store_ok());
  Service plain(test_options());  // no journal configured: trivially ok
  EXPECT_TRUE(plain.cache_store_ok());
}

// --- Service-scoped fault injection (GBIS_SVC_FAULTS) ----------------------

TEST(SvcFaultPlan, ParsesTheGrammarAndRejectsMalformedSpecs) {
  const SvcFaultPlan plan =
      SvcFaultPlan::parse("throw@req:0,oom@solve:1,hang@solve:3,crash@batch:2");
  EXPECT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.at(SvcFaultSite::kReq, 0), SvcFaultKind::kThrow);
  EXPECT_EQ(plan.at(SvcFaultSite::kSolve, 1), SvcFaultKind::kOom);
  EXPECT_EQ(plan.at(SvcFaultSite::kSolve, 3), SvcFaultKind::kHang);
  EXPECT_EQ(plan.at(SvcFaultSite::kBatch, 2), SvcFaultKind::kCrash);
  EXPECT_EQ(plan.at(SvcFaultSite::kReq, 1), SvcFaultKind::kNone);
  EXPECT_TRUE(SvcFaultPlan::parse("").empty());
  for (const char* bad :
       {"stop@req:0", "throw@trial:0", "throw@req", "throw@req:x",
        "throw@req:0,bogus", "@req:0", "  "}) {
    EXPECT_THROW(SvcFaultPlan::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(Service, InjectedThrowAnswersTheStableInternalReason) {
  const std::string log_path = temp_journal("svc_fault_throw.jsonl");
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.faults = SvcFaultPlan::parse("throw@solve:0");
  options.access_log_path = log_path;
  // Distinct seed: a separate solve identity, so it runs as its own
  // cold solve (ordinal 1) instead of coalescing with the faulted one.
  const auto out = run_sequence(
      options, {solve_line("f", g), solve_line("ok", g, ",\"seed\":9")});
  ASSERT_EQ(out.size(), 2u);
  std::string error;
  ASSERT_TRUE(json_parse_string(out[0], "error", error));
  // Clients get the catalog reason, never the raw exception text.
  EXPECT_EQ(error, "internal: solve failed");
  EXPECT_EQ(out[0].find("injected"), std::string::npos);
  // The raw detail is preserved for operators in the access log.
  const std::string log = read_file(log_path);
  EXPECT_NE(log.find("internal: solve failed (injected fault: "
                     "throw@solve:0)"),
            std::string::npos);
  // The stream survives: the next solve (a fresh ordinal) answers.
  EXPECT_TRUE(out[1].starts_with("{\"id\":\"ok\",\"ok\":true"));
}

TEST(Service, InjectedOomMapsToTheOutOfMemoryReason) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.faults = SvcFaultPlan::parse("oom@solve:0");
  const auto out = run_sequence(options, {solve_line("m", g)});
  ASSERT_EQ(out.size(), 1u);
  std::string error;
  ASSERT_TRUE(json_parse_string(out[0], "error", error));
  EXPECT_EQ(error, "internal: out of memory");
}

TEST(Service, InjectedHangIsBoundedByTheRequestDeadline) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.faults = SvcFaultPlan::parse("hang@solve:0");
  const auto out = run_sequence(
      options, {solve_line("h", g, ",\"deadline_s\":0.05")});
  ASSERT_EQ(out.size(), 1u);
  std::string error;
  ASSERT_TRUE(json_parse_string(out[0], "error", error));
  EXPECT_TRUE(error.starts_with("deadline"));
}

TEST(Service, ReqSiteFaultsKeyOnTheRequestSequence) {
  const Graph grid = make_grid(6, 6);
  const Graph ladder = make_ladder(9);
  SvcOptions options = test_options();
  options.faults = SvcFaultPlan::parse("throw@req:1");
  // Request seq 1 is the second line; seq 0 solves untouched.
  const auto out = run_sequence(
      options, {solve_line("a", grid), solve_line("b", ladder)});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].starts_with("{\"id\":\"a\",\"ok\":true"));
  std::string error;
  ASSERT_TRUE(json_parse_string(out[1], "error", error));
  EXPECT_EQ(error, "internal: solve failed");
}

// --- Brownout ladder -------------------------------------------------------

// Reads the effective trial spend of a solve response: the brownout
// clamps show up as trials_ok + degraded (the trials that ran).
std::uint64_t trials_spent(const std::string& line) {
  std::uint64_t ok = 0, degraded = 0;
  EXPECT_TRUE(json_parse_u64(line, "trials_ok", ok));
  EXPECT_TRUE(json_parse_u64(line, "degraded", degraded));
  return ok + degraded;
}

TEST(Service, BrownoutLevelThreeShedsWithARetryHint) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.max_queue = 4;
  options.batch_size = 100;  // fill the queue before dispatch
  Service service(options);
  std::vector<std::string> out;
  for (int i = 0; i < 4; ++i) {
    service.submit_line(solve_line("q" + std::to_string(i), g), out);
  }
  ASSERT_TRUE(out.empty());
  service.drain(out);  // queue at 100% >= the level-3 rung
  ASSERT_EQ(out.size(), 4u);
  for (const std::string& line : out) {
    std::string error;
    ASSERT_TRUE(json_parse_string(line, "error", error));
    EXPECT_TRUE(error.starts_with("rejected: brownout (level 3)"));
    std::uint64_t retry = 0;
    ASSERT_TRUE(json_parse_u64(line, "retry_after_ms", retry));
    EXPECT_EQ(retry, 100u);  // clamp(10 * 4 queued, 100, 5000)
  }
  EXPECT_EQ(service.brownout_level(), 3u);
  EXPECT_EQ(service.metrics().counter(Counter::kSvcBrownoutShed), 4u);
  EXPECT_EQ(service.metrics().counter(Counter::kSvcBrownoutEntered), 1u);
}

TEST(Service, BrownoutLevelTwoCollapsesToOneCheapTrial) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.max_queue = 8;
  options.batch_size = 100;
  options.default_budget = 4;
  Service service(options);
  std::vector<std::string> out;
  for (int i = 0; i < 6; ++i) {  // 6 of 8 queued = 75% -> level 2
    service.submit_line(solve_line("q" + std::to_string(i), g), out);
  }
  service.drain(out);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_TRUE(out[0].starts_with("{\"id\":\"q0\",\"ok\":true"));
  EXPECT_EQ(trials_spent(out[0]), 1u);  // portfolio collapsed to 1 start
  std::string method;
  ASSERT_TRUE(json_parse_string(out[0], "method", method));
  EXPECT_EQ(method, "CKL");  // ... at the cheap end of the ladder
}

TEST(Service, BrownoutLevelOneClampsTheTrialBudget) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.max_queue = 8;
  options.batch_size = 100;
  Service service(options);
  std::vector<std::string> out;
  for (int i = 0; i < 4; ++i) {  // 4 of 8 queued = 50% -> level 1
    service.submit_line(
        solve_line("q" + std::to_string(i), g, ",\"budget\":5"), out);
  }
  service.drain(out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_TRUE(out[0].starts_with("{\"id\":\"q0\",\"ok\":true"));
  EXPECT_EQ(trials_spent(out[0]), 2u);  // budget 5 clamped to 2
}

TEST(Service, BrownoutDisabledSpendsTheFullBudget) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.max_queue = 4;
  options.batch_size = 100;
  options.brownout = false;
  Service service(options);
  std::vector<std::string> out;
  for (int i = 0; i < 4; ++i) {  // would be level 3 with brownout on
    service.submit_line(
        solve_line("q" + std::to_string(i), g, ",\"seed\":" +
                   std::to_string(i) + ",\"budget\":3"), out);
  }
  service.drain(out);
  ASSERT_EQ(out.size(), 4u);
  for (const std::string& line : out) {
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
    EXPECT_EQ(trials_spent(line), 3u);
  }
  EXPECT_EQ(service.brownout_level(), 0u);
}

TEST(Service, BrownoutRestoreIsCountedWhenLoadDrains) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.max_queue = 4;
  options.batch_size = 100;
  Service service(options);
  std::vector<std::string> out;
  for (int i = 0; i < 4; ++i) {
    service.submit_line(solve_line("q" + std::to_string(i), g), out);
  }
  service.drain(out);  // enters level 3
  EXPECT_EQ(service.brownout_level(), 3u);
  out.clear();
  service.submit_line(solve_line("calm", g), out);
  service.drain(out);  // 1 of 4 queued: back to normal
  EXPECT_EQ(service.brownout_level(), 0u);
  EXPECT_EQ(service.metrics().counter(Counter::kSvcBrownoutRestored), 1u);
  EXPECT_TRUE(out[0].starts_with("{\"id\":\"calm\",\"ok\":true"));
}

TEST(Service, DegradedSolvesCacheUnderTheirDegradedIdentity) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.max_queue = 8;
  options.batch_size = 100;
  options.default_budget = 4;
  Service service(options);
  std::vector<std::string> out;
  for (int i = 0; i < 6; ++i) {  // level 2: collapsed to 1 CKL start
    service.submit_line(solve_line("q", g), out);
  }
  service.drain(out);
  out.clear();
  // Calm again: the same request must NOT be answered by the degraded
  // cache entry — its identity (budget 1, CKL) differs.
  service.submit_line(solve_line("calm", g), out);
  service.drain(out);
  ASSERT_EQ(out.size(), 1u);
  std::string disposition;
  ASSERT_TRUE(json_parse_string(out[0], "cache", disposition));
  EXPECT_EQ(disposition, "miss");
  EXPECT_EQ(trials_spent(out[0]), 4u);  // full default budget
}

TEST(Service, BrownoutStreamIsThreadCountInvariant) {
  const Graph grid = make_grid(7, 5);
  const Graph ladder = make_ladder(9);
  std::vector<std::string> lines;
  for (int i = 0; i < 12; ++i) {
    lines.push_back(solve_line("r" + std::to_string(i),
                               i % 2 == 0 ? grid : ladder,
                               ",\"seed\":" + std::to_string(i / 3)));
  }
  const auto make_options = [](unsigned threads) {
    SvcOptions options = test_options(threads);
    options.max_queue = 8;   // small enough that batches brown out
    options.batch_size = 6;  // 6 of 8 queued trips level 2 at dispatch
    return options;
  };
  const auto one = strip_timing(run_sequence(make_options(1), lines));
  const auto eight = strip_timing(run_sequence(make_options(8), lines));
  EXPECT_EQ(one, eight);
}

TEST(Service, StatsReportsTheRobustnessSurface) {
  const std::string path = temp_journal("svc_stats_robust.jsonl");
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.cache_file = path;
  const auto out = run_sequence(
      options, {solve_line("a", g), "{\"id\":\"s\",\"op\":\"stats\"}"});
  ASSERT_EQ(out.size(), 2u);
  std::uint64_t value = 0;
  ASSERT_TRUE(json_parse_u64(out[1], "cache_restored", value));
  EXPECT_EQ(value, 0u);
  ASSERT_TRUE(json_parse_u64(out[1], "cache_journal_bytes", value));
  EXPECT_GT(value, 0u);  // the cold solve was journaled
  ASSERT_TRUE(json_parse_u64(out[1], "cache_compactions", value));
  ASSERT_TRUE(json_parse_u64(out[1], "brownout_level", value));
  EXPECT_EQ(value, 0u);
  ASSERT_TRUE(json_parse_u64(out[1], "brownout_entered", value));
  ASSERT_TRUE(json_parse_u64(out[1], "brownout_restored", value));
  ASSERT_TRUE(json_parse_u64(out[1], "brownout_shed", value));
}

TEST(SvcOptionsEnv, OverlaysTheRobustnessKnobs) {
  ::setenv("GBIS_SVC_CACHE_FILE", "/tmp/journal.jsonl", 1);
  ::setenv("GBIS_SVC_FAULTS", "throw@req:2,crash@batch:1", 1);
  ::setenv("GBIS_SVC_BROWNOUT", "0", 1);
  ::setenv("GBIS_SVC_BROWNOUT_WINDOW", "16", 1);
  SvcOptions options = svc_options_from_env(SvcOptions{});
  EXPECT_EQ(options.cache_file, "/tmp/journal.jsonl");
  EXPECT_EQ(options.faults.size(), 2u);
  EXPECT_EQ(options.faults.at(SvcFaultSite::kBatch, 1),
            SvcFaultKind::kCrash);
  EXPECT_FALSE(options.brownout);
  EXPECT_EQ(options.brownout_window, 16u);

  ::setenv("GBIS_SVC_FAULTS", "bogus@nowhere", 1);   // warn, keep empty
  ::setenv("GBIS_SVC_BROWNOUT", "maybe", 1);         // warn, keep default
  ::setenv("GBIS_SVC_BROWNOUT_WINDOW", "0", 1);      // warn, keep default
  options = svc_options_from_env(SvcOptions{});
  EXPECT_TRUE(options.faults.empty());
  EXPECT_TRUE(options.brownout);
  EXPECT_EQ(options.brownout_window, 32u);

  ::unsetenv("GBIS_SVC_CACHE_FILE");
  ::unsetenv("GBIS_SVC_FAULTS");
  ::unsetenv("GBIS_SVC_BROWNOUT");
  ::unsetenv("GBIS_SVC_BROWNOUT_WINDOW");
}

TEST(SvcOptionsFromEnv, OverlaysDynamicGraphKnobs) {
  ::setenv("GBIS_SVC_GRAPH_MB", "3", 1);
  ::setenv("GBIS_SVC_WARM", "0", 1);
  SvcOptions options = svc_options_from_env(SvcOptions{});
  EXPECT_EQ(options.graph_store_bytes, 3ull << 20);
  EXPECT_FALSE(options.warm);

  ::setenv("GBIS_SVC_GRAPH_MB", "lots", 1);  // warn, keep default
  ::setenv("GBIS_SVC_WARM", "maybe", 1);     // warn, keep default
  options = svc_options_from_env(SvcOptions{});
  EXPECT_EQ(options.graph_store_bytes, SvcOptions{}.graph_store_bytes);
  EXPECT_TRUE(options.warm);

  ::unsetenv("GBIS_SVC_GRAPH_MB");
  ::unsetenv("GBIS_SVC_WARM");
}

// --- The mutate op and warm-start solves -----------------------------------

std::string mutate_inline_line(const std::string& id, const Graph& parent,
                               const std::string& edits) {
  std::string payload;
  append_json_string(payload, inline_payload(parent));
  return "{\"id\":\"" + id + "\",\"op\":\"mutate\",\"inline\":" + payload +
         edits + "}";
}

std::string mutate_ref_line(const std::string& id, std::uint64_t parent,
                            const std::string& edits) {
  return "{\"id\":\"" + id + "\",\"op\":\"mutate\",\"parent\":\"" +
         to_hex16(parent) + "\"" + edits + "}";
}

std::string solve_ref_line(const std::string& id, const std::string& child_fp,
                           const std::string& extra = "") {
  return "{\"id\":\"" + id + "\",\"op\":\"solve\",\"graph\":\"" + child_fp +
         "\"" + extra + "}";
}

TEST(Service, MutateDerivesAChildAndSolvesItByFingerprint) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.batch_size = 1;
  Service service(options);
  std::vector<std::string> out;
  service.submit_line(
      mutate_inline_line("m", g, ",\"add_vertices\":1,\"add_edges\":[36,0]"),
      out);
  service.drain(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].starts_with("{\"id\":\"m\",\"ok\":true,\"op\":\"mutate\""));
  std::string child_fp, parent_fp;
  std::uint64_t value = 0;
  ASSERT_TRUE(json_parse_string(out[0], "fingerprint", child_fp));
  ASSERT_TRUE(json_parse_string(out[0], "parent", parent_fp));
  EXPECT_EQ(parent_fp, to_hex16(graph_fingerprint(g)));
  EXPECT_NE(child_fp, parent_fp);
  EXPECT_TRUE(json_parse_u64(out[0], "vertices", value));
  EXPECT_EQ(value, 37u);
  EXPECT_TRUE(json_parse_u64(out[0], "edges", value));
  EXPECT_EQ(value, 61u);
  EXPECT_TRUE(json_parse_u64(out[0], "edit_distance", value));
  EXPECT_EQ(value, 2u);
  EXPECT_TRUE(json_parse_u64(out[0], "depth", value));
  EXPECT_EQ(value, 1u);
  EXPECT_EQ(service.lineage_size(), 1u);

  // The child is resident in the graph store: solvable by reference.
  out.clear();
  service.submit_line(solve_ref_line("s", child_fp), out);
  service.drain(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].starts_with("{\"id\":\"s\",\"ok\":true"));
  std::string echoed;
  ASSERT_TRUE(json_parse_string(out[0], "fingerprint", echoed));
  EXPECT_EQ(echoed, child_fp);
}

TEST(Service, SolveByUnknownFingerprintIsAnIoError) {
  Service service(test_options());
  std::vector<std::string> out;
  service.submit_line(solve_ref_line("s", to_hex16(0x1234)), out);
  service.drain(out);
  ASSERT_EQ(out.size(), 1u);
  std::string error;
  ASSERT_TRUE(json_parse_string(out[0], "error", error));
  EXPECT_EQ(error, "io: unknown graph \"" + to_hex16(0x1234) + "\"");
}

TEST(Service, MutateRejectsBadBatchesWithStableReasons) {
  const Graph g = make_grid(4, 4);
  SvcOptions options = test_options();
  options.batch_size = 1;
  Service service(options);
  const struct {
    std::string edits;
    std::string expected;
  } cases[] = {
      {"", "parse: empty edit batch"},
      {",\"add_edges\":[0]", "parse: edge arrays must hold (u,v) pairs"},
      {",\"add_edges\":[0,1]", "mutate: edge (0,1) already exists"},
      {",\"add_edges\":[2,2]", "mutate: self-loop (2,2)"},
      {",\"del_edges\":[0,5]", "mutate: edge (0,5) not found"},
      {",\"del_vertices\":[3,3]", "mutate: vertex 3 deleted twice"},
      {",\"del_vertices\":[16]", "mutate: vertex 16 out of range"},
  };
  for (const auto& test_case : cases) {
    std::vector<std::string> out;
    service.submit_line(mutate_inline_line("m", g, test_case.edits), out);
    service.drain(out);
    ASSERT_EQ(out.size(), 1u) << test_case.edits;
    std::string error;
    ASSERT_TRUE(json_parse_string(out[0], "error", error)) << out[0];
    EXPECT_EQ(error, test_case.expected);
  }
  // Unknown parent reference.
  std::vector<std::string> out;
  service.submit_line(mutate_ref_line("m", 0x77, ",\"add_vertices\":1"), out);
  service.drain(out);
  std::string error;
  ASSERT_TRUE(json_parse_string(out[0], "error", error));
  EXPECT_EQ(error, "io: unknown graph \"" + to_hex16(0x77) + "\"");
  // Six of the cases reached the mutate layer; the two parse: rejects
  // failed at submit time and are protocol errors, not mutate ones.
  EXPECT_EQ(service.metrics().counter(Counter::kSvcMutateRejected), 6u);
}

TEST(Service, MutateRepeatAnswersByteIdentically) {
  const Graph g = make_grid(4, 4);
  SvcOptions options = test_options();
  options.batch_size = 1;
  Service service(options);
  std::vector<std::string> first, second;
  service.submit_line(mutate_inline_line("m", g, ",\"del_edges\":[0,1]"),
                      first);
  service.drain(first);
  service.submit_line(mutate_inline_line("m", g, ",\"del_edges\":[0,1]"),
                      second);
  service.drain(second);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first, second);
  EXPECT_EQ(service.lineage_size(), 1u);  // one record, not two
}

TEST(Service, LineageDepthLimitRejectsDeepChains) {
  const Graph g = make_grid(4, 4);
  SvcOptions options = test_options();
  options.batch_size = 1;
  options.lineage_max_depth = 2;
  Service service(options);
  std::string parent_fp = to_hex16(graph_fingerprint(g));
  std::vector<std::string> out;
  service.submit_line(mutate_inline_line("m0", g, ",\"add_vertices\":1"), out);
  service.drain(out);
  std::string child_fp;
  ASSERT_TRUE(json_parse_string(out[0], "fingerprint", child_fp));
  for (int step = 1; step <= 2; ++step) {
    out.clear();
    std::uint64_t fp = 0;
    ASSERT_TRUE(parse_hex16(child_fp, fp));
    service.submit_line(
        mutate_ref_line("m" + std::to_string(step), fp, ",\"add_vertices\":1"),
        out);
    service.drain(out);
    ASSERT_EQ(out.size(), 1u);
    if (step < 2) {
      ASSERT_TRUE(json_parse_string(out[0], "fingerprint", child_fp)) << out[0];
    } else {
      std::string error;
      ASSERT_TRUE(json_parse_string(out[0], "error", error)) << out[0];
      EXPECT_EQ(error, "mutate: lineage depth limit (2) reached");
    }
  }
}

TEST(Service, SolveAfterMutationRunsWarmWithinQuality) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.batch_size = 1;
  Service service(options);
  std::vector<std::string> out;
  // Cold-solve the parent so its partition is cached.
  service.submit_line(solve_line("p", g), out);
  service.drain(out);
  std::uint64_t parent_cut = 0;
  ASSERT_TRUE(json_parse_u64(out[0], "cut", parent_cut));

  // One-edge edit, then solve the child: the warm path must kick in.
  out.clear();
  service.submit_line(
      mutate_ref_line("m", graph_fingerprint(g), ",\"add_edges\":[0,35]"),
      out);
  service.drain(out);
  std::string child_fp;
  ASSERT_TRUE(json_parse_string(out[0], "fingerprint", child_fp)) << out[0];

  out.clear();
  service.submit_line(solve_ref_line("s", child_fp), out);
  service.drain(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].starts_with("{\"id\":\"s\",\"ok\":true")) << out[0];
  bool warm = false;
  ASSERT_TRUE(json_parse_bool(out[0], "warm", warm)) << out[0];
  EXPECT_TRUE(warm);
  std::string method;
  ASSERT_TRUE(json_parse_string(out[0], "method", method));
  EXPECT_EQ(method, "warm-kl");
  // Adding one edge can raise the optimal cut by at most 1.
  std::uint64_t warm_cut = 0;
  ASSERT_TRUE(json_parse_u64(out[0], "cut", warm_cut));
  EXPECT_LE(warm_cut, parent_cut + 1);
  EXPECT_EQ(service.metrics().counter(Counter::kSvcSolveWarm), 1u);

  // Warm results cache under the child identity: the repeat is a hit
  // with the same warm payload.
  std::vector<std::string> repeat;
  service.submit_line(solve_ref_line("s2", child_fp), repeat);
  service.drain(repeat);
  std::string cache;
  ASSERT_TRUE(json_parse_string(repeat[0], "cache", cache));
  EXPECT_EQ(cache, "hit");
  ASSERT_TRUE(json_parse_bool(repeat[0], "warm", warm));
  EXPECT_TRUE(warm);
}

TEST(Service, NoWarmOptionRunsEverySolveCold) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.batch_size = 1;
  options.warm = false;
  Service service(options);
  std::vector<std::string> out;
  service.submit_line(solve_line("p", g), out);
  service.submit_line(
      mutate_ref_line("m", graph_fingerprint(g), ",\"add_edges\":[0,35]"),
      out);
  service.drain(out);
  std::string child_fp;
  ASSERT_TRUE(json_parse_string(out[1], "fingerprint", child_fp));
  out.clear();
  service.submit_line(solve_ref_line("s", child_fp), out);
  service.drain(out);
  bool warm = false;
  EXPECT_FALSE(json_parse_bool(out[0], "warm", warm));
  std::string method;
  ASSERT_TRUE(json_parse_string(out[0], "method", method));
  EXPECT_NE(method, "warm-kl");
  EXPECT_EQ(service.metrics().counter(Counter::kSvcSolveWarm), 0u);
}

TEST(Service, MutationChainIsThreadCountInvariant) {
  const Graph grid = make_grid(6, 6);
  const Graph ladder = make_ladder(9);
  const std::string grid_fp = to_hex16(graph_fingerprint(grid));
  std::vector<std::string> lines;
  lines.push_back(solve_line("a", grid, ",\"want_sides\":true"));
  lines.push_back(solve_line("b", ladder));
  lines.push_back(mutate_inline_line("m1", grid, ",\"add_edges\":[0,35]"));
  lines.push_back(mutate_inline_line(
      "m2", grid, ",\"add_vertices\":2,\"add_edges\":[36,0,37,35]"));
  // Chain the first child: mutate-of-mutate inside the same stream.
  lines.push_back(
      "{\"id\":\"bad\",\"op\":\"mutate\",\"parent\":\"" + grid_fp +
      "\",\"add_edges\":[0,1]}");  // duplicate edge: deterministic error
  lines.push_back(solve_line("c", grid, ",\"want_sides\":true"));  // repeat
  lines.push_back("{\"id\":\"s\",\"op\":\"stats\"}");

  const auto one = strip_timing(run_sequence(test_options(1), lines));
  const auto two = strip_timing(run_sequence(test_options(2), lines));
  const auto eight = strip_timing(run_sequence(test_options(8), lines));
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(Service, WarmSolveChainIsThreadCountInvariant) {
  // The full dynamic pipeline — cold solve, mutate, warm solve of the
  // child — must keep the byte-determinism contract. Fingerprints are
  // content-addressed, so the request lines can name the child without
  // reading earlier responses.
  const Graph grid = make_grid(6, 6);
  MutationBatch batch;
  batch.add_edges = {0, 35};
  const Graph child = apply_mutation(grid, batch).child;
  const std::string child_fp = to_hex16(graph_fingerprint(child));
  std::vector<std::string> lines;
  lines.push_back(solve_line("p", grid));
  lines.push_back(mutate_ref_line("m", graph_fingerprint(grid),
                                  ",\"add_edges\":[0,35]"));
  lines.push_back(solve_ref_line("w", child_fp, ",\"want_sides\":true"));
  lines.push_back(solve_ref_line("w2", child_fp, ",\"want_sides\":true"));

  SvcOptions options = test_options(1);
  options.batch_size = 1;  // each step lands before the next is planned
  const auto one = run_sequence(options, lines);
  options.threads = 8;
  const auto eight = run_sequence(options, lines);
  EXPECT_EQ(one, eight);
  ASSERT_EQ(one.size(), 4u);
  EXPECT_NE(one[2].find("\"warm\":true"), std::string::npos) << one[2];
}

TEST(Service, LineageJournalReplaysMutationsAcrossRestart) {
  const std::string path = temp_journal("svc_lineage_restart.jsonl");
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.batch_size = 1;
  options.cache_file = path;

  std::vector<std::string> cold;
  {
    Service service(options);
    ASSERT_TRUE(service.cache_store_ok());
    service.submit_line(
        mutate_inline_line("m", g, ",\"add_edges\":[0,35]"), cold);
    service.drain(cold);
    ASSERT_EQ(cold.size(), 1u);
    ASSERT_TRUE(cold[0].find("\"ok\":true") != std::string::npos) << cold[0];
  }

  // Fresh service (crash stand-in): the graph is gone — graphs are
  // never journaled — but the lineage record replays, so the same
  // mutate (now by parent reference) answers byte-identically.
  Service warm(options);
  ASSERT_TRUE(warm.cache_store_ok());
  EXPECT_EQ(warm.metrics().counter(Counter::kSvcLineageRestored), 1u);
  EXPECT_EQ(warm.lineage_size(), 1u);
  std::vector<std::string> replayed;
  warm.submit_line(
      mutate_ref_line("m", graph_fingerprint(g), ",\"add_edges\":[0,35]"),
      replayed);
  warm.drain(replayed);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0], cold[0]);

  // A *different* batch on the vanished parent still fails: only
  // recorded derivations survive a restart without the graph.
  std::vector<std::string> out;
  warm.submit_line(
      mutate_ref_line("x", graph_fingerprint(g), ",\"add_edges\":[0,14]"),
      out);
  warm.drain(out);
  std::string error;
  ASSERT_TRUE(json_parse_string(out[0], "error", error));
  EXPECT_EQ(error,
            "io: unknown graph \"" + to_hex16(graph_fingerprint(g)) + "\"");
}

TEST(Service, RestoredLineageHealsAndWarmStartsAfterRematerialization) {
  const std::string path = temp_journal("svc_lineage_heal.jsonl");
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.batch_size = 1;
  options.cache_file = path;
  {
    Service service(options);
    std::vector<std::string> out;
    service.submit_line(
        mutate_inline_line("m", g, ",\"add_edges\":[0,35]"), out);
    service.drain(out);
  }
  // After restart the restored record has no vertex map. Re-sending
  // the parent (inline) re-materializes the chain, heals the map in
  // place, and the child solve warm-starts off the parent's partition.
  Service warm(options);
  std::vector<std::string> out;
  warm.submit_line(solve_line("p", g), out);
  warm.submit_line(
      mutate_ref_line("m", graph_fingerprint(g), ",\"add_edges\":[0,35]"),
      out);
  warm.drain(out);
  ASSERT_EQ(out.size(), 2u);
  std::string child_fp;
  ASSERT_TRUE(json_parse_string(out[1], "fingerprint", child_fp));
  out.clear();
  warm.submit_line(solve_ref_line("s", child_fp), out);
  warm.drain(out);
  bool is_warm = false;
  ASSERT_TRUE(json_parse_bool(out[0], "warm", is_warm)) << out[0];
  EXPECT_TRUE(is_warm);
}

TEST(Service, StatsV3ReportsDynamicGraphCounters) {
  const Graph g = make_grid(4, 4);
  SvcOptions options = test_options();
  options.batch_size = 1;
  Service service(options);
  std::vector<std::string> out;
  service.submit_line(mutate_inline_line("m", g, ",\"add_vertices\":1"), out);
  // Rejected at the mutate layer (a parse error would not count).
  service.submit_line(mutate_inline_line("bad", g, ",\"add_edges\":[0,1]"),
                      out);
  service.drain(out);
  out.clear();
  service.submit_line("{\"id\":\"s\",\"op\":\"stats\"}", out);
  service.drain(out);
  ASSERT_EQ(out.size(), 1u);
  std::uint64_t value = 0;
  ASSERT_TRUE(json_parse_u64(out[0], "mutate_ok", value));
  EXPECT_EQ(value, 1u);
  ASSERT_TRUE(json_parse_u64(out[0], "mutate_rejected", value));
  EXPECT_EQ(value, 1u);
  ASSERT_TRUE(json_parse_u64(out[0], "graphstore_entries", value));
  EXPECT_EQ(value, 2u);  // parent + child
  ASSERT_TRUE(json_parse_u64(out[0], "graphstore_bytes", value));
  EXPECT_GT(value, 0u);
  ASSERT_TRUE(json_parse_u64(out[0], "lineage_records", value));
  EXPECT_EQ(value, 1u);
  EXPECT_TRUE(json_parse_u64(out[0], "solve_warm", value));
  EXPECT_TRUE(json_parse_u64(out[0], "warm_fallback", value));
  EXPECT_TRUE(json_parse_u64(out[0], "graphstore_evictions", value));
  EXPECT_TRUE(json_parse_u64(out[0], "lineage_restored", value));
}

TEST(Protocol, MutateParseErrorsAreStable) {
  SvcRequest request;
  std::string error;
  // No parent at all.
  EXPECT_FALSE(parse_request("{\"id\":\"m\",\"op\":\"mutate\"}", request,
                             error));
  EXPECT_EQ(error,
            "parse: mutate needs a parent graph (\"parent\", \"path\" or "
            "\"inline\")");
  // Two parent references at once.
  EXPECT_FALSE(parse_request(
      "{\"id\":\"m\",\"op\":\"mutate\",\"parent\":\"" + to_hex16(1) +
          "\",\"path\":\"g.graph\",\"add_vertices\":1}",
      request, error));
  EXPECT_EQ(error, "parse: mutate parent references are mutually exclusive");
  // Malformed fingerprint.
  EXPECT_FALSE(parse_request(
      "{\"id\":\"m\",\"op\":\"mutate\",\"parent\":\"xyz\",\"add_vertices\":1}",
      request, error));
  EXPECT_EQ(error, "parse: \"parent\" must be a 16-digit hex fingerprint");
  // Bad edit arrays.
  EXPECT_FALSE(parse_request("{\"id\":\"m\",\"op\":\"mutate\",\"parent\":\"" +
                                 to_hex16(1) + "\",\"add_edges\":[1,-2]}",
                             request, error));
  EXPECT_EQ(error,
            "parse: \"add_edges\" must be an array of at most 1048576 "
            "non-negative integers");
  // A valid line round-trips the batch.
  ASSERT_TRUE(parse_request(
      "{\"id\":\"m\",\"op\":\"mutate\",\"parent\":\"" + to_hex16(9) +
          "\",\"add_edges\":[3,4],\"del_edges\":[1,2],\"add_vertices\":2,"
          "\"del_vertices\":[0]}",
      request, error))
      << error;
  EXPECT_EQ(request.op, SvcRequest::Op::kMutate);
  EXPECT_TRUE(request.has_fingerprint);
  EXPECT_EQ(request.fingerprint, 9u);
  EXPECT_EQ(request.batch.add_edges, (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(request.batch.del_edges, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(request.batch.add_vertices, 2u);
  EXPECT_EQ(request.batch.del_vertices, (std::vector<std::uint64_t>{0}));
  // Solve accepts a graph reference; mixing it with a payload fails.
  ASSERT_TRUE(parse_request("{\"id\":\"s\",\"op\":\"solve\",\"graph\":\"" +
                                to_hex16(9) + "\"}",
                            request, error));
  EXPECT_TRUE(request.has_fingerprint);
  EXPECT_FALSE(parse_request("{\"id\":\"s\",\"op\":\"solve\",\"graph\":\"" +
                                 to_hex16(9) + "\",\"path\":\"g\"}",
                             request, error));
  EXPECT_EQ(error, "parse: graph payloads are mutually exclusive");
}

// --- Request tracing and the flight recorder --------------------------------

TEST(Service, TraceIsEchoedOnlyWhenTheClientSuppliedOne) {
  const Graph g = make_grid(4, 4);
  SvcOptions options = test_options();
  options.batch_size = 1;
  Service service(options);
  std::vector<std::string> out;
  service.submit_line(solve_line("a", g), out);
  service.submit_line(solve_line("b", g, ",\"trace\":\"00000000000000ff\""),
                      out);
  service.submit_line("{\"id\":\"p\",\"op\":\"ping\",\"trace\":\"deadbeef"
                      "deadbeef\"}",
                      out);
  service.drain(out);
  ASSERT_EQ(out.size(), 3u);
  // Derived ids never appear on the wire — pre-tracing byte streams
  // are unchanged.
  EXPECT_EQ(out[0].find("\"trace\""), std::string::npos) << out[0];
  std::string echoed;
  ASSERT_TRUE(json_parse_string(out[1], "trace", echoed));
  EXPECT_EQ(echoed, "00000000000000ff");
  ASSERT_TRUE(json_parse_string(out[2], "trace", echoed));
  EXPECT_EQ(echoed, "deadbeefdeadbeef");

  // A malformed trace id is a parse error, never a silent default.
  out.clear();
  service.submit_line(solve_line("bad", g, ",\"trace\":\"xyz\""), out);
  service.drain(out);
  std::string error;
  ASSERT_TRUE(json_parse_string(out[0], "error", error));
  EXPECT_EQ(error, "parse: \"trace\" must be a 16-digit hex trace id");
}

TEST(Service, TraceOpExportsSpanSetsAndLooksUpById) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.batch_size = 1;
  Service service(options);
  std::vector<std::string> out;
  service.submit_line(solve_line("a", g), out);
  service.submit_line("{\"id\":\"t\",\"op\":\"trace\"}", out);
  service.drain(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[1].starts_with("{\"id\":\"t\",\"ok\":true,"
                                 "\"op\":\"trace\""));
  std::uint64_t traces = 0;
  ASSERT_TRUE(json_parse_u64(out[1], "traces", traces));
  EXPECT_EQ(traces, 1u);
  std::string spans;
  ASSERT_TRUE(json_parse_string(out[1], "spans", spans));
  // The solve's span set, complete: structural marks, the queue wait,
  // the lookup, the worker's solve span, and the finalize bookends.
  const std::string expected_id = to_hex16(splitmix64_at(0, 0));
  EXPECT_NE(spans.find("\"trace\":\"" + expected_id + "\""),
            std::string::npos)
      << spans;
  for (const char* name : {"accept", "parse", "admit", "queue", "lookup",
                           "solve", "trial", "finalize", "write"}) {
    EXPECT_NE(spans.find("\"name\":\"" + std::string(name) + "\""),
              std::string::npos)
        << name << " missing in " << spans;
  }
  EXPECT_NE(spans.find("\"state\":\"done\""), std::string::npos);

  // Lookup by id returns exactly that set; an unknown id is a stable
  // error carrying the requested id.
  out.clear();
  service.submit_line(
      "{\"id\":\"t2\",\"op\":\"trace\",\"trace\":\"" + expected_id + "\"}",
      out);
  service.submit_line(
      "{\"id\":\"t3\",\"op\":\"trace\",\"trace\":\"ffffffffffffffff\"}",
      out);
  service.drain(out);
  ASSERT_EQ(out.size(), 2u);
  ASSERT_TRUE(json_parse_u64(out[0], "traces", traces));
  EXPECT_EQ(traces, 1u);
  std::string echoed;
  ASSERT_TRUE(json_parse_string(out[0], "trace", echoed));
  EXPECT_EQ(echoed, expected_id);
  std::string error;
  ASSERT_TRUE(json_parse_string(out[1], "error", error));
  EXPECT_EQ(error, "trace: unknown trace id \"ffffffffffffffff\"");
}

TEST(Service, TraceStreamIsThreadCountInvariant) {
  const Graph grid = make_grid(7, 5);
  const Graph ladder = make_ladder(9);
  Rng rng(3);
  const Graph gnp = make_gnp(48, gnp_p_for_degree(48, 3.0), rng);
  std::vector<std::string> lines;
  lines.push_back(solve_line("a", grid));
  lines.push_back(solve_line("b", ladder, ",\"budget\":4"));
  lines.push_back(solve_line("c", gnp, ",\"trace\":\"00000000000000aa\""));
  lines.push_back(solve_line("d", grid));  // cache hit
  lines.push_back("{\"id\":\"t\",\"op\":\"trace\"}");
  lines.push_back("{\"id\":\"s\",\"op\":\"stats\"}");
  const auto one = strip_timing(run_sequence(test_options(1), lines));
  const auto two = strip_timing(run_sequence(test_options(2), lines));
  const auto eight = strip_timing(run_sequence(test_options(8), lines));
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  // The trace export survived the strip with its structure intact.
  const std::string& trace_response = one[4];
  EXPECT_NE(trace_response.find("kl.pass"), std::string::npos)
      << trace_response;
  EXPECT_EQ(trace_response.find("_us"), std::string::npos);
}

TEST(Service, TraceIdsPropagateThroughMutateWarmChains) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.batch_size = 1;
  Service service(options);
  std::vector<std::string> out;
  service.submit_line(solve_line("p", g), out);
  service.submit_line(
      mutate_inline_line("m", g, ",\"add_edges\":[0,35]"), out);
  service.drain(out);
  std::string child_fp;
  ASSERT_TRUE(json_parse_string(out[1], "fingerprint", child_fp));
  out.clear();
  service.submit_line(solve_ref_line("s", child_fp), out);
  service.drain(out);
  bool is_warm = false;
  ASSERT_TRUE(json_parse_bool(out[0], "warm", is_warm)) << out[0];
  ASSERT_TRUE(is_warm);

  // Each request in the chain keeps its own derived id (conn 0,
  // ordinals 0..2), and the warm solve's set records the projection
  // and the bounded refinement.
  const FlightRecorder& flight = service.flight();
  ASSERT_EQ(flight.completed().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(flight.completed()[i].trace_id, splitmix64_at(0, i));
  }
  const SpanSet& warm_set = flight.completed()[2];
  EXPECT_EQ(warm_set.op, "solve");
  std::vector<std::string> names;
  for (const SpanRec& span : warm_set.spans) names.push_back(span.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "warm.project"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "warm.refine"),
            names.end());
  // The mutate set records the mutate phase-1 span, not a solve.
  const SpanSet& mutate_set = flight.completed()[1];
  names.clear();
  for (const SpanRec& span : mutate_set.spans) names.push_back(span.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "mutate"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "solve"), names.end());
}

TEST(Service, WarmRestartKeepsIdsAndReemitsSpansOnlyForLiveWork) {
  const std::string path = temp_journal("svc_trace_restart.jsonl");
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.batch_size = 1;
  options.cache_file = path;

  std::uint64_t cold_trace = 0;
  {
    Service service(options);
    std::vector<std::string> out;
    service.submit_line(solve_line("a", g), out);
    service.drain(out);
    ASSERT_EQ(service.flight().completed().size(), 1u);
    cold_trace = service.flight().completed()[0].trace_id;
    const SpanSet& cold_set = service.flight().completed()[0];
    bool has_solve = false;
    for (const SpanRec& span : cold_set.spans) {
      has_solve = has_solve || span.name == "solve";
    }
    EXPECT_TRUE(has_solve);
  }

  // Restart: the journal replays the result, so the same request
  // answers as a warm hit. Its trace id derives identically (same
  // connection, same ordinal) — but the span set is the hit's own
  // live work: no solve span is re-emitted for work that never ran.
  Service warm(options);
  std::vector<std::string> out;
  warm.submit_line(solve_line("a", g), out);
  warm.drain(out);
  std::string cache;
  ASSERT_TRUE(json_parse_string(out[0], "cache", cache));
  EXPECT_EQ(cache, "hit");
  ASSERT_EQ(warm.flight().completed().size(), 1u);
  const SpanSet& hit_set = warm.flight().completed()[0];
  EXPECT_EQ(hit_set.trace_id, cold_trace);
  bool has_solve = false, has_lookup = false;
  for (const SpanRec& span : hit_set.spans) {
    has_solve = has_solve || span.name == "solve";
    has_lookup = has_lookup || span.name == "lookup";
  }
  EXPECT_FALSE(has_solve);
  EXPECT_TRUE(has_lookup);
}

TEST(Service, RejectedRequestsCarryTotalTimingAndATraceId) {
  const Graph g = make_grid(6, 6);
  const std::string path = testing::TempDir() + "svc_access_reject.jsonl";
  std::remove(path.c_str());
  SvcOptions options = test_options();
  options.batch_size = 100;  // hold the queue so the bound trips
  options.max_queue = 2;
  options.access_log_path = path;
  {
    Service service(options);
    std::vector<std::string> out;
    service.submit_line(solve_line("a", g), out);
    service.submit_line(solve_line("b", g, ",\"seed\":5"), out);
    service.submit_line(solve_line("c", g, ",\"seed\":6"), out);  // bounces
    ASSERT_EQ(out.size(), 1u);  // the reject answered immediately
    service.drain(out);
  }
  std::istringstream in(read_file(path));
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  // The reject is first in the log (it never waited) and carries the
  // same observability surface as a served request.
  std::string status, trace;
  ASSERT_TRUE(json_parse_string(lines[0], "status", status));
  EXPECT_EQ(status, "rejected");
  ASSERT_TRUE(json_parse_string(lines[0], "trace", trace));
  EXPECT_EQ(trace, to_hex16(splitmix64_at(0, 2)));
  std::uint64_t t_total = 0;
  EXPECT_TRUE(json_parse_u64(lines[0], "t_total_us", t_total));
  // The rejected set lands in the flight ring too, marked as such.
  for (const std::string& logged : lines) {
    EXPECT_NE(logged.find("\"t_total_us\":"), std::string::npos) << logged;
  }
}

TEST(AccessLog, RotatesAtTheConfiguredBound) {
  const std::string path = testing::TempDir() + "svc_access_rotate.jsonl";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  AccessEntry entry;
  entry.id = "x";
  entry.op = "ping";
  entry.status = "ok";
  const std::size_t line_bytes = encode_access_entry(entry).size() + 1;
  {
    AccessLog log(path, 3 * line_bytes);
    for (int i = 0; i < 4; ++i) log.append(entry);
    log.flush();
    // 3 lines fit; the 4th rotated them out and started fresh.
    std::istringstream current(read_file(path));
    std::string line;
    int kept = 0;
    while (std::getline(current, line)) ++kept;
    EXPECT_EQ(kept, 1);
    std::istringstream rolled(read_file(path + ".1"));
    int archived = 0;
    while (std::getline(rolled, line)) ++archived;
    EXPECT_EQ(archived, 3);
  }
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(Service, StatsV5ReportsTheTracingSurface) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.batch_size = 1;
  Service service(options);
  std::vector<std::string> out;
  service.submit_line(solve_line("a", g), out);
  service.drain(out);
  out.clear();
  service.submit_line("{\"id\":\"s\",\"op\":\"stats\"}", out);
  service.drain(out);
  ASSERT_EQ(out.size(), 1u);
  std::uint64_t value = 0;
  ASSERT_TRUE(json_parse_u64(out[0], "stats_version", value));
  EXPECT_EQ(value, 5u);
  ASSERT_TRUE(json_parse_u64(out[0], "trace_spans", value));
  EXPECT_GT(value, 0u);
  EXPECT_TRUE(json_parse_u64(out[0], "trace_exports", value));
  ASSERT_TRUE(json_parse_u64(out[0], "flight_ring", value));
  EXPECT_EQ(value, 1u);
  ASSERT_TRUE(json_parse_u64(out[0], "flight_capacity", value));
  EXPECT_EQ(value, 64u);
  EXPECT_TRUE(json_parse_u64(out[0], "flight_inflight", value));
  // Exemplars: the solve is the max (and only) sample, so its derived
  // id is the exemplar on both request-latency and queue-wait.
  std::string exemplar;
  ASSERT_TRUE(
      json_parse_string(out[0], "request_latency_exemplar_us", exemplar));
  EXPECT_EQ(exemplar, to_hex16(splitmix64_at(0, 0)));
  ASSERT_TRUE(
      json_parse_string(out[0], "solve_latency_exemplar_us", exemplar));
  EXPECT_EQ(exemplar, to_hex16(splitmix64_at(0, 0)));
}

TEST(Service, FlightFileArmsTheSignalDump) {
  const std::string path = testing::TempDir() + "svc_flight_dump.jsonl";
  std::remove(path.c_str());
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.batch_size = 1;
  options.flight_file = path;
  options.flight_ring = 8;
  {
    Service service(options);
    ASSERT_TRUE(service.flight_ok());
    std::vector<std::string> out;
    service.submit_line(solve_line("a", g), out);
    service.drain(out);
    // The hook path the SIGQUIT handler takes, invoked directly (a
    // raise() would take down the whole test runner under sanitizers'
    // signal interception).
    trigger_flight_dump();
  }
  const std::string dump = read_file(path);
  EXPECT_NE(dump.find("\"state\":\"done\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"trace\":\"" + to_hex16(splitmix64_at(0, 0)) + "\""),
            std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gbis
