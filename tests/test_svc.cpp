// Partition-service suite: graph fingerprinting (shared with the
// campaign journal — the golden value below pins cross-version journal
// compatibility), the LRU result cache, the budgeted solver policy,
// the NDJSON protocol, and the scheduler's determinism contract: the
// response stream is a pure function of the request stream for any
// worker count.
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/gen/gnp.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/harness/checkpoint.hpp"
#include "gbis/io/edge_list.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/svc/cache.hpp"
#include "gbis/svc/fingerprint.hpp"
#include "gbis/svc/policy.hpp"
#include "gbis/svc/protocol.hpp"
#include "gbis/svc/scheduler.hpp"
#include "gbis/util/json_lite.hpp"

namespace gbis {
namespace {

std::string inline_payload(const Graph& g) {
  std::ostringstream out;
  write_edge_list(out, g);
  return out.str();
}

std::string solve_line(const std::string& id, const Graph& g,
                       const std::string& extra = "") {
  std::string payload;
  append_json_string(payload, inline_payload(g));
  return "{\"id\":\"" + id + "\"" + extra + ",\"op\":\"solve\",\"inline\":" +
         payload + "}";
}

// --- Fingerprint -----------------------------------------------------------

// Golden value captured from the pre-refactor checkpoint hash (the
// same bytes, then private to harness/checkpoint.cpp). If this test
// breaks, every existing campaign journal stops resuming — change the
// fingerprint only with a journal-migration story.
TEST(Fingerprint, CampaignGoldenValueIsStable) {
  std::vector<Graph> graphs;
  graphs.push_back(make_grid(4, 4));
  graphs.push_back(make_ladder(5));
  const std::vector<Method> methods{Method::kKl, Method::kCkl};
  RunConfig config;
  config.starts = 2;
  const auto trials =
      enumerate_trial_matrix(graphs.size(), methods, config.starts);
  EXPECT_EQ(campaign_fingerprint(7, config, trials, graphs),
            0x308ed261561afa99ull);
}

TEST(Fingerprint, InsertionOrderInvariant) {
  GraphBuilder forward(4);
  forward.add_edge(0, 1);
  forward.add_edge(1, 2);
  forward.add_edge(2, 3);
  GraphBuilder backward(4);
  backward.add_edge(3, 2);
  backward.add_edge(2, 1);
  backward.add_edge(1, 0);
  EXPECT_EQ(graph_fingerprint(forward.build()),
            graph_fingerprint(backward.build()));
}

TEST(Fingerprint, SensitiveToStructureLabelsAndWeights) {
  const std::uint64_t base = graph_fingerprint(make_grid(3, 3));
  EXPECT_NE(base, graph_fingerprint(make_grid(3, 4)));

  GraphBuilder path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  GraphBuilder relabeled(3);  // same shape, different center label
  relabeled.add_edge(1, 0);
  relabeled.add_edge(0, 2);
  EXPECT_NE(graph_fingerprint(path.build()),
            graph_fingerprint(relabeled.build()));

  GraphBuilder weighted(3);
  weighted.add_edge(0, 1, 2);
  weighted.add_edge(1, 2);
  GraphBuilder unit(3);
  unit.add_edge(0, 1);
  unit.add_edge(1, 2);
  EXPECT_NE(graph_fingerprint(weighted.build()),
            graph_fingerprint(unit.build()));

  GraphBuilder heavy_vertex(3);
  heavy_vertex.add_edge(0, 1);
  heavy_vertex.add_edge(1, 2);
  heavy_vertex.set_vertex_weight(0, 5);
  EXPECT_NE(graph_fingerprint(heavy_vertex.build()),
            graph_fingerprint(unit.build()));
}

// --- Result cache ----------------------------------------------------------

SvcCacheValue small_value(Weight cut, std::size_t sides_bytes) {
  SvcCacheValue value;
  value.cut = cut;
  value.method = "KL";
  value.trials_ok = 1;
  value.sides.assign(sides_bytes, 0);
  return value;
}

SvcCacheKey key_of(std::uint64_t fingerprint) {
  SvcCacheKey key;
  key.fingerprint = fingerprint;
  return key;
}

TEST(SvcCache, HitMissAndPromotion) {
  SvcResultCache cache(1 << 20);
  EXPECT_EQ(cache.lookup(key_of(1)), nullptr);
  cache.insert(key_of(1), small_value(10, 8));
  const SvcCacheValue* hit = cache.lookup(key_of(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cut, 10);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(SvcCache, EvictsLeastRecentlyUsed) {
  // Budget sized to hold exactly two entries of this shape.
  SvcResultCache probe(1 << 20);
  probe.insert(key_of(0), small_value(0, 64));
  const std::uint64_t entry_bytes = probe.stats().bytes;

  SvcResultCache cache(2 * entry_bytes);
  cache.insert(key_of(1), small_value(1, 64));
  cache.insert(key_of(2), small_value(2, 64));
  ASSERT_NE(cache.lookup(key_of(1)), nullptr);  // 1 is now MRU
  cache.insert(key_of(3), small_value(3, 64));  // evicts 2, the LRU
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.lookup(key_of(1)), nullptr);
  EXPECT_EQ(cache.lookup(key_of(2)), nullptr);
  EXPECT_NE(cache.lookup(key_of(3)), nullptr);
  EXPECT_LE(cache.stats().bytes, 2 * entry_bytes);
}

TEST(SvcCache, ZeroBudgetDisablesCaching) {
  SvcResultCache cache(0);
  cache.insert(key_of(1), small_value(1, 8));
  EXPECT_EQ(cache.lookup(key_of(1)), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(SvcCache, DistinctIdentityFieldsNeverAlias) {
  SvcResultCache cache(1 << 20);
  SvcCacheKey key = key_of(7);
  cache.insert(key, small_value(1, 8));
  SvcCacheKey other = key;
  other.seed = 99;
  EXPECT_EQ(cache.lookup(other), nullptr);
  other = key;
  other.budget = 4;
  EXPECT_EQ(cache.lookup(other), nullptr);
  other = key;
  other.method_key = 0;
  EXPECT_EQ(cache.lookup(other), nullptr);
  other = key;
  other.deadline_bits = 42;
  EXPECT_EQ(cache.lookup(other), nullptr);
}

// --- Policy ----------------------------------------------------------------

Graph policy_graph() {
  Rng rng(11);
  return make_gnp(64, gnp_p_for_degree(64, 4.0), rng);
}

TEST(Policy, PortfolioIsDeterministicAndKeepsSides) {
  const Graph g = policy_graph();
  PolicySpec spec;
  spec.budget = 5;
  const PolicyResult a = run_policy(g, spec, 7, {}, /*keep_sides=*/true);
  const PolicyResult b = run_policy(g, spec, 7, {}, /*keep_sides=*/true);
  ASSERT_EQ(a.status, TrialStatus::kOk);
  EXPECT_EQ(a.ok, 5u);
  EXPECT_EQ(a.best_cut, b.best_cut);
  EXPECT_EQ(a.best_method, b.best_method);
  EXPECT_EQ(a.best_sides, b.best_sides);

  // The reported sides must actually be a bisection with the reported
  // cut.
  Bisection check(g, std::vector<std::uint8_t>(a.best_sides));
  EXPECT_EQ(check.cut(), a.best_cut);
}

TEST(Policy, BudgetOneIsOneCklStart) {
  const Graph g = policy_graph();
  PolicySpec spec;
  spec.budget = 1;
  const PolicyResult result = run_policy(g, spec, 7);
  ASSERT_EQ(result.status, TrialStatus::kOk);
  EXPECT_EQ(result.best_method, Method::kCkl);

  PolicySpec single;
  single.portfolio = false;
  single.method = Method::kCkl;
  single.budget = 1;
  EXPECT_EQ(run_policy(g, single, 7).best_cut, result.best_cut);
}

TEST(Policy, ExpiredDeadlineTimesOutEveryTrial) {
  const Graph g = policy_graph();
  PolicySpec spec;
  spec.budget = 3;
  spec.deadline_seconds = 1e-9;
  const PolicyResult result = run_policy(g, spec, 7);
  EXPECT_EQ(result.status, TrialStatus::kTimedOut);
  EXPECT_EQ(result.timed_out, 3u);
  EXPECT_EQ(result.ok, 0u);
}

TEST(Policy, StopFlagSkipsRemainingTrials) {
  const Graph g = policy_graph();
  PolicySpec spec;
  spec.budget = 4;
  std::atomic<bool> stop{true};
  const PolicyResult result = run_policy(g, spec, 7, {}, false, &stop);
  EXPECT_EQ(result.status, TrialStatus::kSkipped);
  EXPECT_EQ(result.skipped, 4u);
}

// --- Protocol --------------------------------------------------------------

TEST(Protocol, ParsesSolveRequest) {
  SvcRequest request;
  std::string error;
  ASSERT_TRUE(parse_request(
      R"({"id":"r1","op":"solve","path":"g.graph","method":"kl",)"
      R"("budget":4,"deadline_s":0.5,"seed":9,"want_sides":true})",
      request, error));
  EXPECT_EQ(request.id, "r1");
  EXPECT_EQ(request.op, SvcRequest::Op::kSolve);
  EXPECT_EQ(request.path, "g.graph");
  EXPECT_EQ(request.method, "kl");
  EXPECT_EQ(request.budget, 4u);
  EXPECT_DOUBLE_EQ(request.deadline_seconds, 0.5);
  EXPECT_TRUE(request.has_seed);
  EXPECT_EQ(request.seed, 9u);
  EXPECT_TRUE(request.want_sides);
}

TEST(Protocol, RejectsMalformedRequests) {
  SvcRequest request;
  std::string error;
  EXPECT_FALSE(parse_request("", request, error));
  EXPECT_TRUE(error.starts_with("parse:"));
  EXPECT_FALSE(parse_request("not json", request, error));
  EXPECT_FALSE(parse_request(R"({"op":"explode"})", request, error));
  EXPECT_FALSE(parse_request(R"({"op":"solve"})", request, error));
  EXPECT_FALSE(
      parse_request(R"({"op":"solve","path":"a","inline":"b"})", request,
                    error));
  EXPECT_FALSE(
      parse_request(R"({"op":"solve","path":"a","budget":0})", request,
                    error));
  EXPECT_FALSE(parse_request(R"({"op":"solve","path":"a","deadline_s":-1})",
                             request, error));
  // The id still comes back for correlation.
  EXPECT_FALSE(
      parse_request(R"({"id":"bad","op":"explode"})", request, error));
  EXPECT_EQ(request.id, "bad");
}

TEST(Protocol, EncodeIsScannableByTheSharedParser) {
  SvcResponse response;
  response.id = "weird \"id\"\n";
  response.ok = true;
  response.has_solve = true;
  response.cut = 12;
  response.method = "CKL";
  response.trials_ok = 2;
  response.fingerprint = 0xabcull;
  response.cache = "hit";
  const std::string line = encode_response(response);
  std::string id, cache;
  std::uint64_t cut = 0;
  EXPECT_TRUE(json_parse_string(line, "id", id));
  EXPECT_EQ(id, response.id);
  EXPECT_TRUE(json_parse_u64(line, "cut", cut));
  EXPECT_EQ(cut, 12u);
  EXPECT_TRUE(json_parse_string(line, "cache", cache));
  EXPECT_EQ(cache, "hit");
}

// --- Service / scheduler ---------------------------------------------------

SvcOptions test_options(unsigned threads = 1) {
  SvcOptions options;
  options.threads = threads;
  options.batch_size = 4;
  options.default_budget = 2;
  return options;
}

std::vector<std::string> run_sequence(const SvcOptions& options,
                                      const std::vector<std::string>& lines) {
  Service service(options);
  std::vector<std::string> out;
  for (const std::string& line : lines) {
    service.submit_line(line, out);
    if (service.pending() >= options.batch_size) service.process_batch(out);
  }
  service.drain(out);
  return out;
}

TEST(Service, SolvesAndEchoesIdentity) {
  const Graph g = make_grid(6, 6);
  const auto out = run_sequence(test_options(), {solve_line("a", g)});
  ASSERT_EQ(out.size(), 1u);
  std::string cache;
  std::uint64_t cut = 0;
  EXPECT_TRUE(out[0].starts_with("{\"id\":\"a\",\"ok\":true"));
  EXPECT_TRUE(json_parse_u64(out[0], "cut", cut));
  EXPECT_EQ(cut, 6u);  // the 6x6 grid's optimal bisection
  EXPECT_TRUE(json_parse_string(out[0], "cache", cache));
  EXPECT_EQ(cache, "miss");
}

TEST(Service, ResponseStreamIsThreadCountInvariant) {
  const Graph grid = make_grid(7, 5);
  const Graph ladder = make_ladder(9);
  Rng rng(3);
  const Graph gnp = make_gnp(48, gnp_p_for_degree(48, 3.0), rng);
  std::vector<std::string> lines;
  lines.push_back(solve_line("a", grid, ",\"want_sides\":true"));
  lines.push_back(solve_line("b", ladder, ",\"method\":\"kl\""));
  lines.push_back(solve_line("c", gnp, ",\"budget\":5"));
  lines.push_back("{\"id\":\"p\",\"op\":\"ping\"}");
  lines.push_back(solve_line("d", grid, ",\"want_sides\":true"));  // repeat
  lines.push_back(solve_line("e", gnp, ",\"seed\":99"));
  lines.push_back("{\"id\":\"s\",\"op\":\"stats\"}");

  const auto one = run_sequence(test_options(1), lines);
  const auto two = run_sequence(test_options(2), lines);
  const auto eight = run_sequence(test_options(8), lines);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(Service, RepeatAcrossBatchesIsServedFromCache) {
  const Graph g = make_grid(6, 6);
  SvcOptions options = test_options();
  options.batch_size = 1;  // every request is its own batch
  Service service(options);
  std::vector<std::string> first, second;
  service.submit_line(solve_line("cold", g, ",\"want_sides\":true"), first);
  service.drain(first);
  service.submit_line(solve_line("warm", g, ",\"want_sides\":true"), second);
  service.drain(second);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);

  std::string cold_cache, warm_cache, cold_sides, warm_sides;
  ASSERT_TRUE(json_parse_string(first[0], "cache", cold_cache));
  ASSERT_TRUE(json_parse_string(second[0], "cache", warm_cache));
  EXPECT_EQ(cold_cache, "miss");
  EXPECT_EQ(warm_cache, "hit");
  // Identical payloads: the hit is byte-for-byte the cold answer.
  ASSERT_TRUE(json_parse_string(first[0], "sides", cold_sides));
  ASSERT_TRUE(json_parse_string(second[0], "sides", warm_sides));
  EXPECT_EQ(cold_sides, warm_sides);
  EXPECT_EQ(service.cache_stats().hits, 1u);
}

TEST(Service, DuplicatesWithinABatchCoalesce) {
  const Graph g = make_grid(6, 6);
  Service service(test_options());
  std::vector<std::string> out;
  service.submit_line(solve_line("lead", g), out);
  service.submit_line(solve_line("follow", g), out);
  // Same graph, different seed: NOT a duplicate.
  service.submit_line(solve_line("other", g, ",\"seed\":5"), out);
  service.drain(out);
  ASSERT_EQ(out.size(), 3u);
  std::string cache;
  ASSERT_TRUE(json_parse_string(out[0], "cache", cache));
  EXPECT_EQ(cache, "miss");
  ASSERT_TRUE(json_parse_string(out[1], "cache", cache));
  EXPECT_EQ(cache, "coalesced");
  ASSERT_TRUE(json_parse_string(out[2], "cache", cache));
  EXPECT_EQ(cache, "miss");
  EXPECT_EQ(service.metrics().counter(Counter::kSvcCoalesced), 1u);

  std::uint64_t lead_cut = 0, follow_cut = 0;
  ASSERT_TRUE(json_parse_u64(out[0], "cut", lead_cut));
  ASSERT_TRUE(json_parse_u64(out[1], "cut", follow_cut));
  EXPECT_EQ(lead_cut, follow_cut);
}

TEST(Service, FullQueueRejectsWithReason) {
  SvcOptions options = test_options();
  options.max_queue = 2;
  options.batch_size = 100;  // never auto-flush
  Service service(options);
  const Graph g = make_grid(4, 4);
  std::vector<std::string> out;
  service.submit_line(solve_line("a", g), out);
  service.submit_line(solve_line("b", g), out);
  EXPECT_TRUE(out.empty());
  service.submit_line(solve_line("c", g), out);  // bounces
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].starts_with("{\"id\":\"c\",\"ok\":false"));
  std::string error;
  ASSERT_TRUE(json_parse_string(out[0], "error", error));
  EXPECT_TRUE(error.starts_with("rejected: queue full"));
  EXPECT_EQ(service.metrics().counter(Counter::kSvcRejected), 1u);
  // The admitted requests still answer, in order.
  service.drain(out);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[1].starts_with("{\"id\":\"a\""));
  EXPECT_TRUE(out[2].starts_with("{\"id\":\"b\""));
}

TEST(Service, ExpiredDeadlineAnswersDeadlineError) {
  const Graph g = make_grid(6, 6);
  const auto out = run_sequence(
      test_options(), {solve_line("d", g, ",\"deadline_s\":1e-9")});
  ASSERT_EQ(out.size(), 1u);
  std::string error;
  ASSERT_TRUE(json_parse_string(out[0], "error", error));
  EXPECT_TRUE(error.starts_with("deadline"));
  // And the degraded answer must not poison the cache for the same
  // request without a deadline.
  const auto ok = run_sequence(test_options(), {solve_line("d", g)});
  EXPECT_TRUE(ok[0].starts_with("{\"id\":\"d\",\"ok\":true"));
}

TEST(Service, StopFlagDrainsQueuedSolvesAsShutdown) {
  const Graph g = make_grid(6, 6);
  Service service(test_options());
  std::vector<std::string> out;
  service.submit_line(solve_line("q1", g), out);
  service.submit_line(solve_line("q2", g), out);
  std::atomic<bool> stop{true};  // the kill arrives before dispatch
  service.drain(out, &stop);
  ASSERT_EQ(out.size(), 2u);
  for (const std::string& line : out) {
    std::string error;
    ASSERT_TRUE(json_parse_string(line, "error", error));
    EXPECT_TRUE(error.starts_with("shutdown"));
  }
}

TEST(Service, BadInputsAnswerInOrderWithoutKillingTheStream) {
  const Graph g = make_grid(4, 4);
  const auto out = run_sequence(
      test_options(),
      {"{\"id\":\"m\",\"op\":\"solve\",\"inline\":\"2 1\\n0 1\\n\","
       "\"method\":\"bogus\"}",
       "{\"id\":\"io\",\"op\":\"solve\",\"path\":\"/nonexistent.graph\"}",
       "{\"id\":\"junk\" this is not json",
       "{\"id\":\"g\",\"op\":\"solve\",\"inline\":\"garbage here\"}",
       solve_line("ok", g)});
  ASSERT_EQ(out.size(), 5u);
  std::string error;
  ASSERT_TRUE(json_parse_string(out[0], "error", error));
  EXPECT_TRUE(error.starts_with("parse: unknown method"));
  ASSERT_TRUE(json_parse_string(out[1], "error", error));
  EXPECT_TRUE(error.starts_with("io:"));
  ASSERT_TRUE(json_parse_string(out[2], "error", error));
  EXPECT_TRUE(error.starts_with("parse:"));
  ASSERT_TRUE(json_parse_string(out[3], "error", error));
  EXPECT_TRUE(error.starts_with("parse: inline graph:"));
  EXPECT_TRUE(out[4].starts_with("{\"id\":\"ok\",\"ok\":true"));
}

TEST(Service, StatsReportsTheCounterCatalog) {
  const Graph g = make_grid(4, 4);
  Service service(test_options());
  std::vector<std::string> out;
  service.submit_line(solve_line("a", g), out);
  service.submit_line(solve_line("b", g), out);  // coalesces with a
  service.submit_line("{\"id\":\"s\",\"op\":\"stats\"}", out);
  service.drain(out);
  ASSERT_EQ(out.size(), 3u);
  std::uint64_t requests = 0, coalesced = 0, misses = 0;
  ASSERT_TRUE(json_parse_u64(out[2], "requests", requests));
  ASSERT_TRUE(json_parse_u64(out[2], "coalesced", coalesced));
  ASSERT_TRUE(json_parse_u64(out[2], "cache_misses", misses));
  EXPECT_EQ(requests, 3u);
  EXPECT_EQ(coalesced, 1u);
  EXPECT_EQ(misses, 2u);  // the follower's lookup also missed
  // The obs-catalog mirror matches what stats reported.
  EXPECT_EQ(service.metrics().counter(Counter::kSvcRequests), 3u);
  EXPECT_EQ(service.metrics().counter(Counter::kSvcCacheMisses), 2u);
}

TEST(Service, CacheEvictionsSurfaceInStats) {
  const Graph a = make_grid(5, 5);
  const Graph b = make_grid(5, 6);
  const Graph c = make_grid(5, 7);
  SvcOptions options = test_options();
  options.batch_size = 1;
  options.cache_bytes = 400;  // roughly two 25-30 vertex entries
  Service service(options);
  std::vector<std::string> out;
  for (const auto* g : {&a, &b, &c, &a}) {
    service.submit_line(solve_line("x", *g), out);
    service.drain(out);
  }
  EXPECT_GT(service.cache_stats().evictions, 0u);
  EXPECT_EQ(service.metrics().counter(Counter::kSvcCacheEvictions),
            service.cache_stats().evictions);
}

}  // namespace
}  // namespace gbis
