// Tests for the CSV writer and the trace instrumentation that feeds it.
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/gen/regular_planted.hpp"
#include "gbis/harness/csv.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/sa/sa.hpp"

namespace gbis {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  csv.cell(std::int64_t{1}).cell("x");
  csv.end_row();
  csv.cell(2.5).cell(std::uint64_t{7});
  csv.end_row();
  EXPECT_EQ(out.str(), "a,b\n1,x\n2.5,7\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out, {"v"});
  csv.cell("has,comma");
  csv.end_row();
  csv.cell("has\"quote");
  csv.end_row();
  EXPECT_EQ(out.str(), "v\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(Csv, DoublesRoundTripExactly) {
  // Default ostringstream precision (6 significant digits) would
  // truncate these; max_digits10 formatting must round-trip through
  // strtod bit-exactly.
  const double values[] = {1.0 / 3.0, 0.1234567890123456, 1e-17,
                           12345.678901234567, 2.5};
  std::ostringstream out;
  CsvWriter csv(out, {"v"});
  for (double v : values) {
    csv.cell(v);
    csv.end_row();
  }
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);  // header
  for (double v : values) {
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(std::strtod(line.c_str(), nullptr), v) << line;
  }
  // Short values stay short for readability.
  EXPECT_NE(out.str().find("\n2.5\n"), std::string::npos);
}

TEST(Csv, ExplicitPrecisionOverloadForDisplayColumns) {
  std::ostringstream out;
  CsvWriter csv(out, {"v"});
  csv.cell(1.0 / 3.0, 3);
  csv.end_row();
  EXPECT_EQ(out.str(), "v\n0.333\n");
}

TEST(Csv, ColumnMismatchThrows) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  csv.cell("only");
  EXPECT_THROW(csv.end_row(), std::logic_error);
}

TEST(Trace, SaTraceMatchesTemperatureCount) {
  Rng rng(1);
  const Graph g = make_regular_planted({200, 8, 3}, rng);
  Bisection b = Bisection::random(g, rng);
  SaOptions options;
  options.temperature_length_factor = 2.0;
  options.cooling_ratio = 0.85;
  std::vector<SaTracePoint> trace;
  const SaStats stats = sa_refine(b, rng, options, &trace);
  ASSERT_EQ(trace.size(), stats.temperatures);
  // Temperatures strictly decrease; acceptance in [0, 1]; best cuts
  // monotone non-increasing.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].acceptance, 0.0);
    EXPECT_LE(trace[i].acceptance, 1.0);
    if (i > 0) {
      EXPECT_LT(trace[i].temperature, trace[i - 1].temperature);
      EXPECT_LE(trace[i].best_cut, trace[i - 1].best_cut);
    }
  }
  EXPECT_EQ(trace.back().best_cut, stats.final_cut);
}

TEST(Trace, KlPassCutsMonotone) {
  Rng rng(2);
  const Graph g = make_regular_planted({300, 8, 3}, rng);
  Bisection b = Bisection::random(g, rng);
  std::vector<Weight> passes;
  const KlStats stats = kl_refine(b, {}, &passes);
  ASSERT_EQ(passes.size(), stats.passes);
  for (std::size_t i = 1; i < passes.size(); ++i) {
    EXPECT_LE(passes[i], passes[i - 1]);
  }
  EXPECT_EQ(passes.back(), stats.final_cut);
}

}  // namespace
}  // namespace gbis
