// Integration tests: end-to-end behaviour across modules, asserting
// the paper's qualitative claims at test-friendly scale.
#include <algorithm>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "gbis/gen/gnp.hpp"

#include "gbis/core/compaction.hpp"
#include "gbis/exact/cycles.hpp"
#include "gbis/exact/tree.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/ops.hpp"
#include "gbis/harness/runner.hpp"
#include "gbis/io/edge_list.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/sa/sa.hpp"

namespace gbis {
namespace {

RunConfig test_config() {
  RunConfig config;
  config.starts = 2;  // the paper's protocol
  config.sa.temperature_length_factor = 4.0;
  config.sa.cooling_ratio = 0.9;
  return config;
}

Weight best_of(const Graph& g, Method m, Rng& rng, const RunConfig& cfg) {
  return run_method(g, m, rng, cfg).best_cut;
}

TEST(Integration, CompactionHelpsOnSparseRegular) {
  // Observation 2 at small scale: on Gbreg(n, b, 3), CKL's cut is at
  // most KL's, and usually much smaller. Averaged over instances to
  // avoid flakiness.
  Rng rng(1);
  const RunConfig cfg = test_config();
  double kl_total = 0, ckl_total = 0;
  for (int i = 0; i < 4; ++i) {
    const Graph g = make_regular_planted({500 * 2, 8, 3}, rng);
    kl_total += static_cast<double>(best_of(g, Method::kKl, rng, cfg));
    ckl_total += static_cast<double>(best_of(g, Method::kCkl, rng, cfg));
  }
  EXPECT_LE(ckl_total, kl_total);
  EXPECT_LE(ckl_total / 4.0, 24.0);  // near the planted width 8
}

TEST(Integration, DegreeFourIsEasy) {
  // Observation 1: on Gbreg(n, b, 4) the planted bisection is found.
  Rng rng(2);
  const RunConfig cfg = test_config();
  const Graph g = make_regular_planted({500 * 2, 8, 4}, rng);
  EXPECT_LE(best_of(g, Method::kKl, rng, cfg), 16);
  EXPECT_LE(best_of(g, Method::kCkl, rng, cfg), 16);
}

TEST(Integration, DegreeTwoGbregSolvedExactly) {
  // Section VI: degree-2 Gbreg graphs are unions of cycles with optimal
  // bisection <= 2, and the exact solver handles them.
  Rng rng(3);
  const Graph g = make_regular_planted({400, 4, 2}, rng);
  ASSERT_TRUE(is_union_of_cycles(g));
  const ExactBisection exact = cycles_bisection(g);
  EXPECT_LE(exact.cut, 2);
  // The heuristics should find a comparable cut.
  const RunConfig cfg = test_config();
  EXPECT_LE(best_of(g, Method::kCkl, rng, cfg), exact.cut + 4);
}

TEST(Integration, KlNearOptimalOnBinaryTrees) {
  // Paper Observation 4 claims SA beats KL on binary trees. That
  // relation does NOT reproduce here: our KL lands within a few edges
  // of the exact tree optimum (<= 2, certified by the DP), leaving SA
  // no room to win — the 1989 KL was evidently much weaker on trees
  // (their Table 1 ladder/tree improvements imply large absolute
  // cuts). EXPERIMENTS.md discusses the divergence; this test pins the
  // reproducible fact.
  Rng rng(4);
  const RunConfig cfg = test_config();
  for (std::uint32_t n : {254u, 510u, 1022u}) {
    const Graph g = make_binary_tree(n);
    const Weight optimal = tree_bisection_width(g);
    EXPECT_LE(optimal, 2);
    EXPECT_LE(best_of(g, Method::kKl, rng, cfg), optimal + 8) << n;
  }
}

TEST(Integration, CompactionImprovesKlOnTrees) {
  // Table 1's strongest row is binary trees, where the paper's
  // compaction improves KL by ~56%. Our KL is already near-optimal on
  // trees (EXPERIMENTS.md divergence D1), leaving compaction almost
  // nothing to improve, so whether CKL's best-of-2 beats KL's is seed
  // luck. Assert the reproducible part: both land within a few edges
  // of the exact optimum (worst observed over 40 seeds: 10 vs opt 2).
  Rng rng(5);
  const RunConfig cfg = test_config();
  for (std::uint32_t n : {254u, 510u, 1022u}) {
    const Graph g = make_binary_tree(n);
    const Weight optimal = tree_bisection_width(g);
    EXPECT_LE(best_of(g, Method::kKl, rng, cfg), optimal + 12) << n;
    EXPECT_LE(best_of(g, Method::kCkl, rng, cfg), optimal + 12) << n;
  }
}

TEST(Integration, TreeOptimaAreTiny) {
  // The exact DP certifies that tree bisection optima are tiny, which
  // is what makes the heuristics' tree failures visible.
  for (std::uint32_t n : {126u, 510u, 2046u}) {
    EXPECT_LE(tree_bisection_width(make_binary_tree(n)), 2);
  }
}

TEST(Integration, PlantedRecoveryThroughSerialization) {
  // Full pipeline: generate, serialize, parse, solve.
  Rng rng(6);
  const PlantedParams params = planted_params_for_degree(300, 4.0, 6);
  const Graph original = make_planted(params, rng);
  std::stringstream ss;
  write_edge_list(ss, original);
  const Graph parsed = read_edge_list(ss);
  const RunConfig cfg = test_config();
  EXPECT_LE(best_of(parsed, Method::kCkl, rng, cfg), 10);
}

TEST(Integration, GnpRandomCutsAreNearOptimal) {
  // Section IV's critique of the Gnp model: even KL cannot move far
  // below the random-cut expectation on a dense-enough Gnp graph.
  Rng rng(7);
  const Graph g = make_gnp(200, gnp_p_for_degree(200, 20.0), rng);
  const RunConfig cfg = test_config();
  const double random_cut =
      static_cast<double>(best_of(g, Method::kRandom, rng, cfg));
  const double kl_cut =
      static_cast<double>(best_of(g, Method::kKl, rng, cfg));
  EXPECT_GT(kl_cut, random_cut * 0.4);
}

TEST(Integration, FourMethodsAgreeOnEasyInstance) {
  Rng rng(8);
  const PlantedParams params{200, 0.25, 0.25, 4};
  const Graph g = make_planted(params, rng);
  const RunConfig cfg = test_config();
  EXPECT_EQ(best_of(g, Method::kKl, rng, cfg), 4);
  EXPECT_EQ(best_of(g, Method::kCkl, rng, cfg), 4);
  EXPECT_EQ(best_of(g, Method::kSa, rng, cfg), 4);
  EXPECT_EQ(best_of(g, Method::kCsa, rng, cfg), 4);
}

}  // namespace
}  // namespace gbis
