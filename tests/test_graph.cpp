// Unit tests for the graph substrate: builder semantics, CSR
// invariants, and structural operations.
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/graph/graph.hpp"
#include "gbis/graph/ops.hpp"

namespace gbis {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  return b.build();
}

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.validate());
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(Graph, VerticesWithoutEdges) {
  GraphBuilder b(5);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
  EXPECT_TRUE(g.validate());
}

TEST(Graph, TriangleBasics) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.validate());
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_EQ(g.edge_weight(0, 1), 1);
  EXPECT_EQ(g.edge_weight(0, 2), 1);
  EXPECT_EQ(g.total_edge_weight(), 3);
  EXPECT_EQ(g.total_vertex_weight(), 3);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(Graph, NeighborsAreSorted) {
  GraphBuilder b(6);
  b.add_edge(3, 5);
  b.add_edge(3, 1);
  b.add_edge(3, 4);
  b.add_edge(3, 0);
  const Graph g = b.build();
  const auto nbrs = g.neighbors(3);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 4u);
  EXPECT_EQ(nbrs[3], 5u);
}

TEST(Graph, ParallelEdgesMergeWeights) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 0, 3);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge_weight(0, 1), 5);
  EXPECT_EQ(g.total_edge_weight(), 5);
  EXPECT_TRUE(g.validate());
}

TEST(Graph, EdgesListsEachEdgeOnceOrdered) {
  const Graph g = triangle();
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (Edge{0, 1, 1}));
  EXPECT_EQ(edges[1], (Edge{0, 2, 1}));
  EXPECT_EQ(edges[2], (Edge{1, 2, 1}));
}

TEST(Graph, VertexWeights) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.set_vertex_weight(1, 4);
  const Graph g = b.build();
  EXPECT_EQ(g.vertex_weight(0), 1);
  EXPECT_EQ(g.vertex_weight(1), 4);
  EXPECT_EQ(g.total_vertex_weight(), 6);
  EXPECT_TRUE(g.validate());
}

TEST(Graph, WeightedDegree) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 2);
  b.add_edge(0, 2, 5);
  const Graph g = b.build();
  EXPECT_EQ(g.weighted_degree(0), 7);
  EXPECT_EQ(g.weighted_degree(1), 2);
}

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
}

TEST(GraphBuilder, DropsSelfLoopWhenConfigured) {
  GraphBuilder b(3, GraphBuilder::SelfLoops::kDrop);
  b.add_edge(1, 1);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(b.add_edge(7, 0), std::invalid_argument);
}

TEST(GraphBuilder, RejectsNonPositiveWeights) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 1, -2), std::invalid_argument);
  EXPECT_THROW(b.set_vertex_weight(0, 0), std::invalid_argument);
  EXPECT_THROW(b.set_vertex_weight(5, 1), std::invalid_argument);
}

TEST(GraphBuilder, ReusableAfterBuild) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g1 = b.build();
  EXPECT_EQ(g1.num_edges(), 1u);
  const Graph g2 = b.build();  // builder was reset
  EXPECT_EQ(g2.num_edges(), 0u);
  EXPECT_EQ(g2.num_vertices(), 2u);
}

TEST(Ops, ConnectedComponentsOnUnion) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = b.build();  // {0,1,2}, {3,4}, {5}
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3u);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[1], c.label[2]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_NE(c.label[0], c.label[5]);
  const auto sizes = c.sizes();
  EXPECT_EQ(sizes[c.label[0]], 3u);
  EXPECT_EQ(sizes[c.label[3]], 2u);
  EXPECT_EQ(sizes[c.label[5]], 1u);
}

TEST(Ops, IsConnected) {
  EXPECT_TRUE(is_connected(triangle()));
  EXPECT_TRUE(is_connected(Graph{}));
  GraphBuilder b(4);
  b.add_edge(0, 1);
  EXPECT_FALSE(is_connected(b.build()));
}

TEST(Ops, BfsDistancesOnPath) {
  const Graph g = make_path(5);
  const auto dist = bfs_distances(g, 0);
  for (std::uint32_t v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
  EXPECT_THROW(bfs_distances(g, 9), std::out_of_range);
}

TEST(Ops, BfsUnreachable) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto dist = bfs_distances(b.build(), 0);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(Ops, DegreeStats) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  const Graph g = b.build();  // star
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 3u);
  EXPECT_DOUBLE_EQ(s.average, 1.5);
}

TEST(Ops, IsRegular) {
  EXPECT_TRUE(is_regular(triangle(), 2));
  EXPECT_FALSE(is_regular(triangle(), 3));
  EXPECT_TRUE(is_regular(make_cycle(8), 2));
  EXPECT_FALSE(is_regular(make_path(5), 2));
}

TEST(Ops, InducedSubgraph) {
  const Graph g = make_cycle(6);
  const Vertex keep[] = {0, 1, 2, 5};
  const Graph sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.num_vertices(), 4u);
  // Edges kept: (0,1), (1,2), (5,0) -> remapped (3,0).
  EXPECT_EQ(sub.num_edges(), 3u);
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_TRUE(sub.has_edge(0, 3));
  EXPECT_TRUE(sub.validate());
}

TEST(Ops, InducedSubgraphRejectsBadInput) {
  const Graph g = make_cycle(4);
  const Vertex dup[] = {0, 0};
  EXPECT_THROW(induced_subgraph(g, dup), std::invalid_argument);
  const Vertex oob[] = {0, 9};
  EXPECT_THROW(induced_subgraph(g, oob), std::out_of_range);
}

TEST(Ops, UnionOfCyclesDetection) {
  EXPECT_TRUE(is_union_of_cycles(make_cycle(5)));
  const std::uint32_t sizes[] = {3, 4, 5};
  EXPECT_TRUE(is_union_of_cycles(make_union_of_cycles(sizes)));
  EXPECT_FALSE(is_union_of_cycles(make_path(4)));
  EXPECT_FALSE(is_union_of_cycles(Graph{}));
}

TEST(Ops, ForestDetection) {
  EXPECT_TRUE(is_forest(make_path(7)));
  EXPECT_TRUE(is_forest(make_binary_tree(15)));
  EXPECT_FALSE(is_forest(make_cycle(4)));
  GraphBuilder b(5);  // two disjoint trees
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  EXPECT_TRUE(is_forest(b.build()));
}

}  // namespace
}  // namespace gbis
