// Unit and property tests for the partition substrate: Bisection
// bookkeeping, gain arithmetic, and balance repair.
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/gen/gnp.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/partition/balance.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/partition/buckets.hpp"
#include "gbis/partition/gains.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

Graph square() {  // 4-cycle 0-1-2-3
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  return b.build();
}

TEST(Bisection, CutComputation) {
  const Graph g = square();
  // {0,1} vs {2,3}: edges (1,2) and (3,0) cross.
  Bisection b(g, {0, 0, 1, 1});
  EXPECT_EQ(b.cut(), 2);
  // {0,2} vs {1,3}: all four edges cross.
  Bisection b2(g, {0, 1, 0, 1});
  EXPECT_EQ(b2.cut(), 4);
}

TEST(Bisection, RejectsBadSides) {
  const Graph g = square();
  EXPECT_THROW(Bisection(g, {0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(Bisection(g, {0, 0, 1, 2}), std::invalid_argument);
}

TEST(Bisection, CountsAndWeights) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.set_vertex_weight(0, 3);
  const Graph g = builder.build();
  Bisection b(g, {0, 0, 1, 1});
  EXPECT_EQ(b.side_count(0), 2u);
  EXPECT_EQ(b.side_count(1), 2u);
  EXPECT_EQ(b.side_weight(0), 4);
  EXPECT_EQ(b.side_weight(1), 2);
  EXPECT_EQ(b.weight_imbalance(), 2);
  EXPECT_EQ(b.count_imbalance(), 0u);
  EXPECT_TRUE(b.is_balanced());
}

TEST(Bisection, RandomIsBalanced) {
  Rng rng(1);
  for (std::uint32_t n : {2u, 3u, 10u, 11u, 100u}) {
    const Graph g = make_path(n);
    const Bisection b = Bisection::random(g, rng);
    EXPECT_LE(b.count_imbalance(), 1u);
    EXPECT_TRUE(b.validate());
  }
}

TEST(Bisection, PlantedSplitsHalves) {
  const Graph g = make_path(6);
  const Bisection b = Bisection::planted(g);
  EXPECT_EQ(b.side(0), 0);
  EXPECT_EQ(b.side(2), 0);
  EXPECT_EQ(b.side(3), 1);
  EXPECT_EQ(b.cut(), 1);  // only edge (2,3) crosses
}

TEST(Bisection, MoveUpdatesCutIncrementally) {
  const Graph g = square();
  Bisection b(g, {0, 0, 1, 1});
  b.move(1);  // now {0} vs {1,2,3}
  EXPECT_EQ(b.cut(), 2);
  EXPECT_EQ(b.side(1), 1);
  EXPECT_EQ(b.side_count(0), 1u);
  EXPECT_EQ(b.cut(), b.recompute_cut());
  EXPECT_TRUE(b.validate());
}

TEST(Bisection, SwapKeepsBalance) {
  const Graph g = square();
  Bisection b(g, {0, 0, 1, 1});
  b.swap(1, 2);
  EXPECT_EQ(b.side_count(0), 2u);
  EXPECT_EQ(b.cut(), b.recompute_cut());
  EXPECT_THROW(b.swap(0, 2), std::invalid_argument);  // both side 0 now
}

TEST(Bisection, GainMatchesDefinition) {
  const Graph g = square();
  const Bisection b(g, {0, 0, 1, 1});
  // Vertex 0: one external edge (to 3), one internal (to 1): gain 0.
  EXPECT_EQ(b.gain(0), 0);
  Bisection lopsided(g, {0, 1, 1, 1});
  // Vertex 0: both edges external: gain 2.
  EXPECT_EQ(lopsided.gain(0), 2);
  // Moving v changes cut by -gain.
  const Weight before = lopsided.cut();
  const Weight gain = lopsided.gain(0);
  lopsided.move(0);
  EXPECT_EQ(lopsided.cut(), before - gain);
}

TEST(Bisection, WeightToSide) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 4);
  builder.add_edge(0, 2, 9);
  const Graph g = builder.build();
  const Bisection b(g, {0, 0, 1});
  EXPECT_EQ(b.weight_to_side(0, 0), 4);
  EXPECT_EQ(b.weight_to_side(0, 1), 9);
}

// Property: under arbitrary random move sequences, the incremental cut
// always equals the from-scratch cut (swept over sizes).
class BisectionMoveProperty : public testing::TestWithParam<std::uint32_t> {};

TEST_P(BisectionMoveProperty, IncrementalCutAlwaysConsistent) {
  const std::uint32_t n = GetParam();
  Rng rng(n * 7919 + 1);
  const Graph g = make_gnp(n, 6.0 / n, rng);
  Bisection b = Bisection::random(g, rng);
  for (int step = 0; step < 200; ++step) {
    b.move(static_cast<Vertex>(rng.below(n)));
    ASSERT_EQ(b.cut(), b.recompute_cut()) << "n=" << n << " step=" << step;
  }
  EXPECT_TRUE(b.validate());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BisectionMoveProperty,
                         testing::Values(8u, 17u, 32u, 64u, 129u, 256u));

// Property: gain-update formulas agree with recomputed gains.
class GainUpdateProperty : public testing::TestWithParam<std::uint32_t> {};

TEST_P(GainUpdateProperty, MoveUpdateMatchesRecompute) {
  const std::uint32_t n = GetParam();
  Rng rng(n * 104729 + 7);
  const Graph g = make_gnp(n, 8.0 / n, rng);
  Bisection b = Bisection::random(g, rng);
  std::vector<Weight> gains = all_gains(b);
  std::vector<std::uint8_t> sides(b.sides().begin(), b.sides().end());
  for (int step = 0; step < 100; ++step) {
    const auto v = static_cast<Vertex>(rng.below(n));
    update_gains_after_move(g, sides, v, gains);
    sides[v] ^= 1;
    b.move(v);
    const std::vector<Weight> fresh = all_gains(b);
    ASSERT_EQ(gains, fresh) << "step " << step;
  }
}

TEST_P(GainUpdateProperty, SwapUpdateMatchesRecompute) {
  const std::uint32_t n = GetParam();
  Rng rng(n * 31337 + 3);
  const Graph g = make_gnp(n, 8.0 / n, rng);
  Bisection b = Bisection::random(g, rng);
  std::vector<Weight> gains = all_gains(b);
  std::vector<std::uint8_t> sides(b.sides().begin(), b.sides().end());
  for (int step = 0; step < 60; ++step) {
    // Pick a random opposite-side pair.
    Vertex a = 0, c = 0;
    do {
      a = static_cast<Vertex>(rng.below(n));
    } while (sides[a] != 0);
    do {
      c = static_cast<Vertex>(rng.below(n));
    } while (sides[c] != 1);
    update_gains_after_swap(g, sides, a, c, gains);
    b.swap(a, c);
    sides[a] = 1;
    sides[c] = 0;
    const std::vector<Weight> fresh = all_gains(b);
    // The formula leaves the swapped pair's own entries stale (callers
    // lock them); fix them up before comparing.
    gains[a] = fresh[a];
    gains[c] = fresh[c];
    ASSERT_EQ(gains, fresh) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GainUpdateProperty,
                         testing::Values(16u, 33u, 64u, 128u));

TEST(PairGain, AccountsForSharedEdge) {
  const Graph g = square();
  const Bisection b(g, {0, 0, 1, 1});
  const auto gains = all_gains(b);
  // Pair (1, 2) shares an edge: g_12 = g_1 + g_2 - 2.
  EXPECT_EQ(pair_gain(g, 1, 2, gains[1], gains[2]),
            gains[1] + gains[2] - 2);
  // Pair (1, 3) does not: g_13 = g_1 + g_3.
  EXPECT_EQ(pair_gain(g, 1, 3, gains[1], gains[3]), gains[1] + gains[3]);
}

TEST(Rebalance, RestoresBalance) {
  Rng rng(5);
  const Graph g = make_gnp(64, 0.1, rng);
  std::vector<std::uint8_t> sides(64, 0);
  for (int i = 0; i < 10; ++i) sides[i] = 1;  // 54 vs 10
  Bisection b(g, std::move(sides));
  const std::uint32_t moved = rebalance(b);
  EXPECT_EQ(moved, 22u);  // 54 -> 32
  EXPECT_TRUE(b.is_balanced());
  EXPECT_EQ(b.cut(), b.recompute_cut());
}

TEST(Rebalance, NoOpWhenBalanced) {
  Rng rng(6);
  const Graph g = make_gnp(30, 0.2, rng);
  Bisection b = Bisection::random(g, rng);
  const Weight cut = b.cut();
  EXPECT_EQ(rebalance(b), 0u);
  EXPECT_EQ(b.cut(), cut);
}

TEST(Rebalance, AllOnOneSide) {
  const Graph g = make_cycle(10);
  Bisection b(g, std::vector<std::uint8_t>(10, 0));
  rebalance(b);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_TRUE(b.validate());
}

TEST(GainBuckets, InsertRemoveUpdate) {
  GainBuckets buckets(10, 5);
  EXPECT_TRUE(buckets.empty());
  buckets.insert(3, 2);
  buckets.insert(4, -5);
  buckets.insert(5, 2);
  EXPECT_EQ(buckets.max_gain_present(), 2);
  EXPECT_TRUE(buckets.contains(3));
  EXPECT_FALSE(buckets.contains(0));
  EXPECT_EQ(buckets.gain(4), -5);

  buckets.remove(5);
  EXPECT_EQ(buckets.max_gain_present(), 2);
  buckets.remove(3);
  EXPECT_EQ(buckets.max_gain_present(), -5);
  buckets.update(4, 5);
  EXPECT_EQ(buckets.max_gain_present(), 5);
  buckets.remove(4);
  EXPECT_TRUE(buckets.empty());
}

TEST(GainBuckets, BucketIterationCoversAll) {
  GainBuckets buckets(6, 3);
  buckets.insert(0, 1);
  buckets.insert(1, 1);
  buckets.insert(2, 1);
  int count = 0;
  for (auto it = buckets.bucket_head(1); it != GainBuckets::kNil;
       it = buckets.bucket_next(static_cast<Vertex>(it))) {
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(GainBuckets, RemoveMiddleOfBucket) {
  GainBuckets buckets(6, 3);
  buckets.insert(0, 1);
  buckets.insert(1, 1);
  buckets.insert(2, 1);
  buckets.remove(1);  // middle of the linked list (insertion order 2,1,0)
  int count = 0;
  for (auto it = buckets.bucket_head(1); it != GainBuckets::kNil;
       it = buckets.bucket_next(static_cast<Vertex>(it))) {
    EXPECT_NE(it, 1);
    ++count;
  }
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace gbis
