// Tests for the extended random graph models (geometric, small world,
// preferential attachment).
#include <stdexcept>

#include <gtest/gtest.h>

#include "gbis/gen/models.hpp"
#include "gbis/graph/analysis.hpp"
#include "gbis/graph/ops.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(Geometric, DegreeNearExpectation) {
  Rng rng(1);
  const std::uint32_t n = 3000;
  const double r = geometric_radius_for_degree(n, 6.0);
  const Graph g = make_geometric(n, r, rng);
  EXPECT_TRUE(g.validate());
  // Boundary effects shave the average; allow a generous window.
  EXPECT_NEAR(g.average_degree(), 6.0, 1.2);
}

TEST(Geometric, RadiusExtremes) {
  Rng rng(2);
  EXPECT_EQ(make_geometric(100, 0.0, rng).num_edges(), 0u);
  // Radius > sqrt(2) connects everything.
  const Graph g = make_geometric(40, 1.5, rng);
  EXPECT_EQ(g.num_edges(), 40ull * 39 / 2);
  EXPECT_THROW(make_geometric(10, -1.0, rng), std::invalid_argument);
  EXPECT_THROW(geometric_radius_for_degree(1, 3.0), std::invalid_argument);
}

TEST(Geometric, BruteForceAgreement) {
  // The grid index must produce exactly the same edges as the O(n^2)
  // definition.
  Rng rng_a(3);
  const Graph fast = make_geometric(200, 0.11, rng_a);
  // Rebuild coordinates with the same stream to cross-check.
  Rng rng_b(3);
  std::vector<double> x(200), y(200);
  for (int i = 0; i < 200; ++i) {
    x[i] = rng_b.real01();
    y[i] = rng_b.real01();
  }
  std::uint64_t expected = 0;
  for (int u = 0; u < 200; ++u) {
    for (int v = u + 1; v < 200; ++v) {
      const double dx = x[u] - x[v], dy = y[u] - y[v];
      if (dx * dx + dy * dy <= 0.11 * 0.11) ++expected;
    }
  }
  EXPECT_EQ(fast.num_edges(), expected);
}

TEST(Geometric, LocalityMakesSmallCuts) {
  // The point of the model here: geometric graphs have small balanced
  // cuts (perimeter ~ sqrt(n)), unlike Gnp at the same degree.
  Rng rng(4);
  const Graph g = make_geometric(2000, geometric_radius_for_degree(2000, 8.0),
                                 rng);
  // Split by x-coordinate (first half of ids is not sorted by x, so
  // use clustering as a proxy): geometric graphs have high clustering.
  EXPECT_GT(global_clustering(g), 0.4);
}

TEST(SmallWorld, LatticeWhenBetaZero) {
  Rng rng(5);
  const Graph g = make_small_world(30, 4, 0.0, rng);
  EXPECT_TRUE(is_regular(g, 4));
  EXPECT_EQ(g.num_edges(), 60u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(SmallWorld, RewiringShrinksDiameter) {
  Rng rng(6);
  const Graph lattice = make_small_world(400, 4, 0.0, rng);
  const Graph rewired = make_small_world(400, 4, 0.3, rng);
  EXPECT_LT(pseudo_diameter(rewired), pseudo_diameter(lattice));
  EXPECT_EQ(rewired.num_edges(), 800u);  // rewiring preserves edge count
}

TEST(SmallWorld, ParamValidation) {
  Rng rng(7);
  EXPECT_THROW(make_small_world(10, 3, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(make_small_world(10, 0, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(make_small_world(4, 4, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(make_small_world(10, 2, 1.5, rng), std::invalid_argument);
}

TEST(Preferential, ShapeAndDegrees) {
  Rng rng(8);
  const Graph g = make_preferential_attachment(500, 3, rng);
  EXPECT_EQ(g.num_vertices(), 500u);
  // Clique on 4 + 3 edges per newcomer.
  EXPECT_EQ(g.num_edges(), 6u + 496u * 3u);
  EXPECT_TRUE(is_connected(g));
  // Heavy tail: max degree far above the mean.
  const DegreeStats stats = degree_stats(g);
  EXPECT_GT(stats.max, 4 * stats.average);
}

TEST(Preferential, ParamValidation) {
  Rng rng(9);
  EXPECT_THROW(make_preferential_attachment(5, 0, rng),
               std::invalid_argument);
  EXPECT_THROW(make_preferential_attachment(3, 3, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace gbis
