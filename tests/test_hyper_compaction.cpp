// Tests for hypergraph matching, contraction, and the compacted FM
// pipeline.
#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/hypergraph/builder.hpp"
#include "gbis/hypergraph/contract_hyper.hpp"
#include "gbis/hypergraph/netlist_gen.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(HyperMatching, MaximalAndDisjoint) {
  Rng rng(1);
  const NetlistParams params{120, 180, 1.0};
  const Hypergraph h = make_random_netlist(params, rng);
  for (HyperMatchPolicy policy :
       {HyperMatchPolicy::kRandom, HyperMatchPolicy::kHeavyConnectivity}) {
    const HyperMatching m = hyper_matching(h, rng, policy);
    EXPECT_TRUE(is_hyper_matching(h, m));
    // Maximality: every unmatched cell has no unmatched co-pin cell.
    std::vector<std::uint8_t> seen(h.num_cells(), 0);
    for (const auto& [a, b] : m) seen[a] = seen[b] = 1;
    for (Cell c = 0; c < h.num_cells(); ++c) {
      if (seen[c]) continue;
      for (Net n : h.nets_of(c)) {
        for (Cell u : h.pins(n)) {
          EXPECT_TRUE(u == c || seen[u])
              << "cells " << c << " and " << u << " both free on net " << n;
        }
      }
    }
  }
}

TEST(HyperMatching, ValidatorRejectsBadPairs) {
  HypergraphBuilder b(4);
  b.add_net(std::vector<Cell>{0, 1});
  b.add_net(std::vector<Cell>{2, 3});
  const Hypergraph h = b.build();
  EXPECT_TRUE(is_hyper_matching(h, {{0, 1}, {2, 3}}));
  EXPECT_FALSE(is_hyper_matching(h, {{0, 2}}));        // no shared net
  EXPECT_FALSE(is_hyper_matching(h, {{0, 0}}));        // self
  EXPECT_FALSE(is_hyper_matching(h, {{0, 1}, {1, 2}}));  // reuse
  EXPECT_FALSE(is_hyper_matching(h, {{0, 9}}));        // range
}

TEST(HyperContract, CollapsedNetsVanish) {
  HypergraphBuilder b(4);
  b.add_net(std::vector<Cell>{0, 1});      // contracted away
  b.add_net(std::vector<Cell>{0, 1, 2});   // shrinks to 2 pins
  b.add_net(std::vector<Cell>{2, 3});
  const Hypergraph h = b.build();
  Rng rng(2);
  const HyperContraction c = contract_hyper(h, {{0, 1}}, rng,
                                            /*pair_leftovers=*/false);
  EXPECT_EQ(c.coarse.num_cells(), 3u);
  EXPECT_EQ(c.coarse.num_nets(), 2u);  // net {0,1} vanished
  EXPECT_EQ(c.coarse.total_cell_weight(), 4);
  EXPECT_TRUE(c.coarse.validate());
}

TEST(HyperContract, IdenticalNetsMergeWeights) {
  HypergraphBuilder b(4);
  b.add_net(std::vector<Cell>{0, 2}, 3);
  b.add_net(std::vector<Cell>{1, 2}, 5);  // same as {0,2} after {0,1} merge
  b.add_net(std::vector<Cell>{0, 1});     // the matching net
  const Hypergraph h = b.build();
  Rng rng(3);
  const HyperContraction c = contract_hyper(h, {{0, 1}}, rng, false);
  EXPECT_EQ(c.coarse.num_nets(), 1u);
  EXPECT_EQ(c.coarse.net_weight(0), 8);  // 3 + 5 merged
}

TEST(HyperContract, ProjectionPreservesCut) {
  Rng rng(4);
  const NetlistParams params{100, 150, 1.2};
  const Hypergraph h = make_random_netlist(params, rng);
  const HyperMatching m = hyper_matching(h, rng);
  const HyperContraction c = contract_hyper(h, m, rng);
  for (int trial = 0; trial < 5; ++trial) {
    const HyperBisection coarse = HyperBisection::random(c.coarse, rng);
    const HyperBisection fine(h, c.project(coarse.sides()));
    ASSERT_EQ(coarse.cut(), fine.cut()) << "trial " << trial;
  }
}

TEST(HyperContract, RejectsNonMatching) {
  HypergraphBuilder b(4);
  b.add_net(std::vector<Cell>{0, 1});
  const Hypergraph h = b.build();
  Rng rng(5);
  EXPECT_THROW(contract_hyper(h, {{0, 2}}, rng), std::invalid_argument);
}

TEST(HyperRebalance, RestoresBalance) {
  Rng rng(6);
  const NetlistParams params{40, 60, 1.0};
  const Hypergraph h = make_random_netlist(params, rng);
  HyperBisection b(h, std::vector<std::uint8_t>(40, 0));
  const std::uint32_t moved = hyper_rebalance(b);
  EXPECT_EQ(moved, 20u);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_EQ(b.cut(), b.recompute_cut());
}

TEST(HyperCompaction, EndToEndLegalAndConsistent) {
  Rng rng(7);
  const NetlistParams params{300, 450, 1.0};
  const Hypergraph h = make_planted_netlist(params, 10, rng);
  HyperCompactionStats stats;
  const HyperBisection b = compacted_hyper_fm(h, rng, {}, &stats);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_EQ(b.cut(), b.recompute_cut());
  EXPECT_EQ(stats.coarse_cut, stats.projected_cut);
  EXPECT_LE(stats.final_cut, 10 + 8);  // near the planted cross count
  EXPECT_EQ(stats.coarse_cells, 150u);
}

TEST(HyperCompaction, HeavyConnectivityPolicy) {
  Rng rng(8);
  const NetlistParams params{200, 300, 1.0};
  const Hypergraph h = make_random_netlist(params, rng);
  HyperCompactionOptions options;
  options.match_policy = HyperMatchPolicy::kHeavyConnectivity;
  const HyperBisection b = compacted_hyper_fm(h, rng, options);
  EXPECT_TRUE(b.is_balanced());
}

}  // namespace
}  // namespace gbis
