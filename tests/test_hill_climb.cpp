// Tests for the iterative-improvement (quench) baseline.
#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "gbis/baseline/hill_climb.hpp"
#include "gbis/exact/brute.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(HillClimb, NeverWorsensKeepsExactBalance) {
  Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = make_gnp(60, 0.1, rng);
    Bisection b = Bisection::random(g, rng);
    const std::uint32_t c0 = b.side_count(0);
    const Weight before = b.cut();
    const HillClimbStats stats = hill_climb(b, rng);
    EXPECT_LE(b.cut(), before);
    EXPECT_EQ(b.side_count(0), c0);  // swaps preserve counts exactly
    EXPECT_EQ(b.cut(), b.recompute_cut());
    EXPECT_EQ(stats.final_cut, b.cut());
    EXPECT_EQ(stats.initial_cut, before);
  }
}

TEST(HillClimb, SolvesEasyInstances) {
  Rng rng(2);
  const PlantedParams params{20, 0.9, 0.9, 2};
  const Graph g = make_planted(params, rng);
  const Weight optimal = brute_force_bisection(g).cut;
  Weight best = std::numeric_limits<Weight>::max();
  for (int start = 0; start < 8; ++start) {
    Bisection b = Bisection::random(g, rng);
    hill_climb(b, rng);
    best = std::min(best, b.cut());
  }
  EXPECT_EQ(best, optimal);
}

TEST(HillClimb, StopsAtLocalOptimum) {
  // At a local optimum w.r.t. swaps, another run must find nothing.
  Rng rng(3);
  const Graph g = make_gnp(40, 0.15, rng);
  Bisection b = Bisection::random(g, rng);
  hill_climb(b, rng);
  const Weight settled = b.cut();
  const HillClimbStats again = hill_climb(b, rng);
  EXPECT_EQ(b.cut(), settled);
  EXPECT_EQ(again.improvements, 0u);
}

TEST(HillClimb, MaxProposalsRespected) {
  Rng rng(4);
  const Graph g = make_gnp(100, 0.1, rng);
  Bisection b = Bisection::random(g, rng);
  HillClimbOptions options;
  options.max_proposals = 50;
  const HillClimbStats stats = hill_climb(b, rng, options);
  EXPECT_LE(stats.proposals, 50u);
}

TEST(HillClimb, DegenerateInputs) {
  Rng rng(5);
  GraphBuilder empty(0);
  const Graph g0 = empty.build();
  Bisection b0(g0, {});
  EXPECT_EQ(hill_climb(b0, rng).proposals, 0u);

  const Graph g1 = make_path(2);
  Bisection b1 = Bisection::random(g1, rng);
  hill_climb(b1, rng);
  EXPECT_EQ(b1.cut(), 1);

  // All vertices on one side: no swap possible, must return cleanly.
  const Graph g2 = make_cycle(6);
  Bisection b2(g2, std::vector<std::uint8_t>(6, 0));
  EXPECT_EQ(hill_climb(b2, rng).proposals, 0u);
}

TEST(HillClimb, WorseThanAnnealOnSparseRegular) {
  // Section II's whole point, pinned as a test: quenching lands in
  // metastable states that annealing escapes. We assert weakly (<=)
  // to stay robust to seeds; the bench shows the typical gap.
  Rng rng(6);
  const PlantedParams params{400, 0.015, 0.015, 8};
  const Graph g = make_planted(params, rng);
  Bisection quenched = Bisection::random(g, rng);
  hill_climb(quenched, rng);
  EXPECT_GE(quenched.cut(), 8);  // cannot beat the planted optimum
}

}  // namespace
}  // namespace gbis
