// Unit tests for graph serialization: round-trips and failure
// injection on malformed inputs.
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/io/edge_list.hpp"
#include "gbis/io/metis.hpp"

namespace gbis {
namespace {

Graph weighted_sample() {
  GraphBuilder b(4);
  b.add_edge(0, 1, 3);
  b.add_edge(1, 2);
  b.add_edge(2, 3, 7);
  b.set_vertex_weight(2, 5);
  return b.build();
}

void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.edges(), b.edges());
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.vertex_weight(v), b.vertex_weight(v));
  }
}

TEST(EdgeList, RoundTripPlain) {
  const Graph g = make_cycle(6);
  std::stringstream ss;
  write_edge_list(ss, g);
  expect_same_graph(g, read_edge_list(ss));
}

TEST(EdgeList, RoundTripWeighted) {
  const Graph g = weighted_sample();
  std::stringstream ss;
  write_edge_list(ss, g);
  expect_same_graph(g, read_edge_list(ss));
}

TEST(EdgeList, ParsesCommentsAndBlankLines) {
  std::stringstream ss("# hello\n\n2 1\n# mid comment\n0 1\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(EdgeList, RejectsMissingHeader) {
  std::stringstream ss("# only a comment\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(EdgeList, RejectsBadHeader) {
  std::stringstream ss("abc def\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(EdgeList, RejectsTrailingHeaderTokens) {
  std::stringstream ss("2 1 9\n0 1\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(EdgeList, RejectsEdgeCountMismatch) {
  std::stringstream ss("3 2\n0 1\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(EdgeList, RejectsOutOfRangeEndpoint) {
  std::stringstream ss("2 1\n0 5\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(EdgeList, RejectsSelfLoop) {
  std::stringstream ss("2 1\n1 1\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(EdgeList, RejectsNonPositiveWeight) {
  std::stringstream ss("2 1\n0 1 0\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(EdgeList, RejectsTrailingEdgeTokens) {
  std::stringstream ss("2 1\n0 1 2 junk\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(EdgeList, RejectsBadVertexWeightLine) {
  std::stringstream ss("2 0\nv 0 0\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
  std::stringstream ss2("2 0\nv 9 1\n");
  EXPECT_THROW(read_edge_list(ss2), std::runtime_error);
}

TEST(EdgeList, FileRoundTrip) {
  const Graph g = make_grid(3, 3);
  const std::string path = testing::TempDir() + "/gbis_io_test.txt";
  write_edge_list_file(path, g);
  expect_same_graph(g, read_edge_list_file(path));
}

TEST(EdgeList, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

TEST(Metis, RoundTripPlain) {
  const Graph g = make_grid(4, 5);
  std::stringstream ss;
  write_metis(ss, g);
  expect_same_graph(g, read_metis(ss));
}

TEST(Metis, RoundTripWeighted) {
  const Graph g = weighted_sample();
  std::stringstream ss;
  write_metis(ss, g);
  expect_same_graph(g, read_metis(ss));
}

TEST(Metis, ParsesPercentComments) {
  std::stringstream ss("% comment\n3 2\n2\n1 3\n2\n");
  const Graph g = read_metis(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Metis, RejectsMissingAdjacencyLine) {
  std::stringstream ss("3 1\n2\n1\n");  // third line missing
  EXPECT_THROW(read_metis(ss), std::runtime_error);
}

TEST(Metis, RejectsCountMismatch) {
  std::stringstream ss("3 2\n2\n1\n\n");  // only 2 half-entries, need 4
  EXPECT_THROW(read_metis(ss), std::runtime_error);
}

TEST(Metis, RejectsOutOfRangeNeighbor) {
  std::stringstream ss("2 1\n2\n5\n");
  EXPECT_THROW(read_metis(ss), std::runtime_error);
}

TEST(Metis, RejectsSelfLoop) {
  std::stringstream ss("2 1\n1\n2\n");
  EXPECT_THROW(read_metis(ss), std::runtime_error);
}

TEST(Metis, RejectsUnsupportedFormat) {
  std::stringstream ss("2 1 100\n1 2\n1 1\n");
  EXPECT_THROW(read_metis(ss), std::runtime_error);
}

TEST(Metis, RejectsMissingEdgeWeight) {
  std::stringstream ss("2 1 1\n2\n1 7\n");  // first line lacks the weight
  EXPECT_THROW(read_metis(ss), std::runtime_error);
}

TEST(Metis, CrossFormatConsistency) {
  // A graph written to both formats parses to the same structure.
  const Graph g = make_binary_tree(10);
  std::stringstream el, mt;
  write_edge_list(el, g);
  write_metis(mt, g);
  expect_same_graph(read_edge_list(el), read_metis(mt));
}

}  // namespace
}  // namespace gbis
