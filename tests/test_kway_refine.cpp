// Tests for direct k-way refinement.
#include <vector>

#include <gtest/gtest.h>

#include "gbis/gen/gnp.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/kway/recursive.hpp"
#include "gbis/kway/refine.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(KwayRefine, NeverWorsensAndKeepsSizes) {
  Rng rng(1);
  for (std::uint32_t k : {2u, 3u, 4u, 6u}) {
    const Graph g = make_gnp(120, 0.06, rng);
    const KwayPartition initial = recursive_kway(g, k, rng);
    KwayRefineStats stats;
    const KwayPartition refined = kway_refine(initial, rng, {}, &stats);
    EXPECT_LE(refined.edge_cut(), initial.edge_cut()) << "k=" << k;
    EXPECT_TRUE(refined.validate()) << "k=" << k;
    // Default tolerance 1: counts within [floor(n/k)-1, ceil(n/k)+1].
    for (std::uint32_t p = 0; p < k; ++p) {
      EXPECT_GE(refined.part_count(p), 120 / k - 1) << "k=" << k;
      EXPECT_LE(refined.part_count(p), (120 + k - 1) / k + 1) << "k=" << k;
    }
    EXPECT_EQ(stats.final_cut, refined.edge_cut());
    EXPECT_EQ(stats.initial_cut, initial.edge_cut());
  }
}

TEST(KwayRefine, FixesObviousMisassignments) {
  // Three cliques, one vertex deliberately mislabeled: refinement must
  // send it home.
  Rng rng(2);
  GraphBuilder builder(12);
  for (std::uint32_t blk = 0; blk < 3; ++blk) {
    const Vertex base = blk * 4;
    for (Vertex u = 0; u < 4; ++u) {
      for (Vertex v = u + 1; v < 4; ++v) builder.add_edge(base + u, base + v);
    }
  }
  builder.add_edge(0, 4);  // weak inter-clique links
  builder.add_edge(4, 8);
  const Graph g = builder.build();
  std::vector<std::uint32_t> labels{0, 0, 0, 1,   // vertex 3 mislabeled
                                    1, 1, 1, 0,   // vertex 7 mislabeled
                                    2, 2, 2, 2};
  const KwayPartition bad(g, 3, std::move(labels));
  const KwayPartition fixed = kway_refine(bad, rng);
  EXPECT_LT(fixed.edge_cut(), bad.edge_cut());
  EXPECT_EQ(fixed.part(3), fixed.part(0));
  EXPECT_EQ(fixed.part(7), fixed.part(4));
}

TEST(KwayRefine, RespectsMaxPasses) {
  Rng rng(3);
  const Graph g = make_gnp(100, 0.08, rng);
  const KwayPartition initial = recursive_kway(g, 4, rng);
  KwayRefineOptions options;
  options.max_passes = 1;
  KwayRefineStats stats;
  kway_refine(initial, rng, options, &stats);
  EXPECT_EQ(stats.passes, 1u);
}

TEST(KwayRefine, WiderToleranceAllowsMoreFreedom) {
  Rng rng(4);
  const Graph g = make_grid(10, 10);
  const KwayPartition initial = recursive_kway(g, 4, rng);
  KwayRefineOptions loose;
  loose.size_tolerance = 3;
  const KwayPartition refined = kway_refine(initial, rng, loose);
  EXPECT_LE(refined.edge_cut(), initial.edge_cut());
  // Counts stay within the widened window [25-3, 25+3].
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_GE(refined.part_count(p), 22u);
    EXPECT_LE(refined.part_count(p), 28u);
  }
}

TEST(KwayRefine, NoOpOnOptimalPartition) {
  // Disconnected cliques already perfectly partitioned: zero moves.
  Rng rng(5);
  GraphBuilder builder(8);
  for (Vertex u = 0; u < 4; ++u) {
    for (Vertex v = u + 1; v < 4; ++v) {
      builder.add_edge(u, v);
      builder.add_edge(u + 4, v + 4);
    }
  }
  const Graph g = builder.build();
  const KwayPartition perfect(g, 2, {0, 0, 0, 0, 1, 1, 1, 1});
  KwayRefineStats stats;
  const KwayPartition out = kway_refine(perfect, rng, {}, &stats);
  EXPECT_EQ(out.edge_cut(), 0);
  EXPECT_EQ(stats.moves, 0u);
}

}  // namespace
}  // namespace gbis
