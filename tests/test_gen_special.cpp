// Unit tests for the deterministic graph families: sizes, degrees, and
// family-defining structure.
#include <stdexcept>

#include <gtest/gtest.h>

#include "gbis/gen/special.hpp"
#include "gbis/graph/ops.hpp"

namespace gbis {
namespace {

TEST(Special, Path) {
  const Graph g = make_path(6);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_forest(g));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(3), 2u);
  EXPECT_THROW(make_path(0), std::invalid_argument);
}

TEST(Special, SingleVertexPath) {
  const Graph g = make_path(1);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Special, Cycle) {
  const Graph g = make_cycle(7);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_TRUE(is_regular(g, 2));
  EXPECT_TRUE(is_connected(g));
  EXPECT_THROW(make_cycle(2), std::invalid_argument);
}

TEST(Special, UnionOfCycles) {
  const std::uint32_t sizes[] = {3, 5, 8};
  const Graph g = make_union_of_cycles(sizes);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 16u);
  EXPECT_TRUE(is_union_of_cycles(g));
  EXPECT_EQ(connected_components(g).count, 3u);
  const std::uint32_t bad[] = {2};
  EXPECT_THROW(make_union_of_cycles(bad), std::invalid_argument);
}

TEST(Special, Ladder) {
  const Graph g = make_ladder(5);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 13u);  // 5 rungs + 2*4 rails
  EXPECT_TRUE(is_connected(g));
  // Corner vertices have degree 2, inner degree 3.
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(4), 3u);
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.max, 3u);
}

TEST(Special, LadderSingleRung) {
  const Graph g = make_ladder(1);
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Special, CircularLadder) {
  const Graph g = make_circular_ladder(6);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 18u);
  EXPECT_TRUE(is_regular(g, 3));
  EXPECT_THROW(make_circular_ladder(2), std::invalid_argument);
}

TEST(Special, Grid) {
  const Graph g = make_grid(4, 6);
  EXPECT_EQ(g.num_vertices(), 24u);
  // Edges: 4*5 horizontal + 3*6 vertical.
  EXPECT_EQ(g.num_edges(), 38u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2u);       // corner
  EXPECT_EQ(g.degree(1), 3u);       // border
  EXPECT_EQ(g.degree(7), 4u);       // interior (1,1)
}

TEST(Special, DegenerateGrids) {
  EXPECT_EQ(make_grid(1, 5).num_edges(), 4u);  // a path
  EXPECT_EQ(make_grid(1, 1).num_edges(), 0u);
}

TEST(Special, Torus) {
  const Graph g = make_torus(4, 5);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 40u);
  EXPECT_TRUE(is_regular(g, 4));
  EXPECT_THROW(make_torus(2, 5), std::invalid_argument);
}

TEST(Special, BinaryTreeHeapShape) {
  const Graph g = make_binary_tree(10);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_TRUE(is_forest(g));
  EXPECT_TRUE(is_connected(g));
  // Root 0 connects to 1 and 2; vertex 4's parent is 1.
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(1, 4));
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Special, CompleteBinaryTreeDegrees) {
  const Graph g = make_binary_tree(15);  // complete, depth 3
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.max, 3u);
  EXPECT_EQ(s.min, 1u);
}

TEST(Special, Caterpillar) {
  const Graph g = make_caterpillar(4, 2);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 11u);
  EXPECT_TRUE(is_forest(g));
  EXPECT_TRUE(is_connected(g));
}

TEST(Special, Hypercube) {
  const Graph g = make_hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);
  EXPECT_TRUE(is_regular(g, 4));
  EXPECT_THROW(make_hypercube(21), std::invalid_argument);
}

TEST(Special, HypercubeDimZero) {
  const Graph g = make_hypercube(0);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Special, Complete) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_TRUE(is_regular(g, 5));
}

TEST(Special, CompleteBipartite) {
  const Graph g = make_complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  // No edges within side A.
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 3));
}

}  // namespace
}  // namespace gbis
