// Anneal lab: convergence traces of SA and KL as CSV, ready for any
// plotting tool — watch "gross features appear at high temperature,
// details develop at lower temperatures" (section II, quoting
// Kirkpatrick et al.) happen on an actual instance.
//
//   $ ./anneal_lab > trace.csv
//   $ ./anneal_lab 2000 16 3 > trace.csv        # two_n b d
//
// Output columns: source (sa/kl), step (temperature index or pass),
// temperature (0 for kl), current_cut, best_cut, acceptance.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "gbis/gen/regular_planted.hpp"
#include "gbis/harness/csv.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/sa/sa.hpp"

int main(int argc, char** argv) {
  using namespace gbis;
  RegularPlantedParams params{2000, 16, 3};
  if (argc == 4) {
    params.two_n =
        static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
    params.b = std::strtoull(argv[2], nullptr, 10);
    params.d = static_cast<std::uint32_t>(std::strtoul(argv[3], nullptr, 10));
  }
  Rng rng(1989);
  const Graph g = make_regular_planted(params, rng);
  std::cerr << "Gbreg(" << params.two_n << ", " << params.b << ", "
            << params.d << "): tracing one SA run and one KL run\n";

  CsvWriter csv(std::cout, {"source", "step", "temperature", "current_cut",
                            "best_cut", "acceptance"});

  // SA trace: one row per temperature.
  {
    Bisection b = Bisection::random(g, rng);
    std::vector<SaTracePoint> trace;
    sa_refine(b, rng, {}, &trace);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      csv.cell("sa")
          .cell(static_cast<std::uint64_t>(i))
          .cell(trace[i].temperature)
          .cell(static_cast<std::int64_t>(trace[i].current_cut))
          .cell(static_cast<std::int64_t>(trace[i].best_cut))
          .cell(trace[i].acceptance);
      csv.end_row();
    }
    std::cerr << "SA finished at cut " << b.cut() << " after "
              << trace.size() << " temperatures\n";
  }

  // KL trace: one row per pass.
  {
    Bisection b = Bisection::random(g, rng);
    std::vector<Weight> passes;
    kl_refine(b, {}, &passes);
    for (std::size_t i = 0; i < passes.size(); ++i) {
      csv.cell("kl")
          .cell(static_cast<std::uint64_t>(i))
          .cell(0.0)
          .cell(static_cast<std::int64_t>(passes[i]))
          .cell(static_cast<std::int64_t>(passes[i]))
          .cell(0.0);
      csv.end_row();
    }
    std::cerr << "KL finished at cut " << b.cut() << " after "
              << passes.size() << " passes\n";
  }
  return 0;
}
