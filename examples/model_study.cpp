// Model study CLI: generate a graph from any of the paper's models (or
// load one from a file) and run any gbis method on it.
//
//   $ ./model_study                                # demo run
//   $ ./model_study gbreg 2000 16 3 ckl            # model n b d method
//   $ ./model_study g2set 2000 3.0 32 csa          # model n avg_deg b method
//   $ ./model_study gnp 2000 3.0 kl                # model n avg_deg method
//   $ ./model_study file graph.txt sa              # edge-list file
//
// Methods: kl sa ckl csa fm cfm mlkl greedy spectral random
#include <cstdlib>
#include <iostream>
#include <string>

#include "gbis/gen/gnp.hpp"
#include "gbis/gen/models.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/graph/analysis.hpp"
#include "gbis/graph/ops.hpp"
#include "gbis/harness/runner.hpp"
#include "gbis/io/edge_list.hpp"
#include "gbis/rng/rng.hpp"

namespace {

using namespace gbis;

Method parse_method(const std::string& name) {
  if (name == "kl") return Method::kKl;
  if (name == "sa") return Method::kSa;
  if (name == "ckl") return Method::kCkl;
  if (name == "csa") return Method::kCsa;
  if (name == "fm") return Method::kFm;
  if (name == "cfm") return Method::kCfm;
  if (name == "mlkl") return Method::kMultilevelKl;
  if (name == "greedy") return Method::kGreedy;
  if (name == "spectral") return Method::kSpectral;
  if (name == "random") return Method::kRandom;
  throw std::invalid_argument("unknown method: " + name);
}

void report(const Graph& g, Method method, Rng& rng) {
  const DegreeStats degrees = degree_stats(g);
  std::cout << "Graph: " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges, avg degree " << degrees.average
            << " (min " << degrees.min << ", max " << degrees.max << "), "
            << connected_components(g).count << " component(s)\n";
  if (g.num_vertices() > 0) {
    std::cout << "  degeneracy " << degeneracy(g) << ", clustering "
              << global_clustering(g) << ", pseudo-diameter "
              << pseudo_diameter(g) << '\n';
  }
  RunConfig config;
  config.starts = 2;
  const RunResult result = run_method(g, method, rng, config);
  std::cout << method_name(method) << ": best cut " << result.best_cut
            << " over " << config.starts << " starts in "
            << result.cpu_seconds << " cpu-s (" << result.wall_seconds
            << " wall-s)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gbis;
  Rng rng(12345);
  try {
    if (argc <= 1) {
      std::cout << "(demo: ./model_study gbreg 2000 16 3 ckl)\n";
      const Graph g = make_regular_planted({2000, 16, 3}, rng);
      report(g, Method::kCkl, rng);
      return 0;
    }
    const std::string model = argv[1];
    if (model == "gbreg" && argc == 6) {
      const RegularPlantedParams params{
          static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10)),
          std::strtoull(argv[3], nullptr, 10),
          static_cast<std::uint32_t>(std::strtoul(argv[4], nullptr, 10))};
      report(make_regular_planted(params, rng), parse_method(argv[5]), rng);
    } else if (model == "g2set" && argc == 6) {
      const auto n =
          static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10));
      const double degree = std::strtod(argv[3], nullptr);
      const std::uint64_t b = std::strtoull(argv[4], nullptr, 10);
      report(make_planted(planted_params_for_degree(n, degree, b), rng),
             parse_method(argv[5]), rng);
    } else if (model == "gnp" && argc == 5) {
      const auto n =
          static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10));
      const double degree = std::strtod(argv[3], nullptr);
      report(make_gnp(n, gnp_p_for_degree(n, degree), rng),
             parse_method(argv[4]), rng);
    } else if (model == "file" && argc == 4) {
      report(read_edge_list_file(argv[2]), parse_method(argv[3]), rng);
    } else {
      std::cerr << "usage: see header comment of model_study.cpp\n";
      return 2;
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  return 0;
}
