// VLSI placement by recursive bisection — the application the paper's
// introduction motivates ("Graph bisection has applications in VLSI
// placement and routing problems").
//
// Builds a synthetic standard-cell netlist (gates with local connection
// structure plus random long-range nets), then places it on a 2^k x 2^k
// grid by recursive bisection with compacted KL: each call splits a
// region's cells across the two halves of its grid window, recursing
// until every cell has a slot. Reports the total wire length (sum over
// nets of Manhattan distance between placed endpoints) against a random
// placement and against the generator's latent layout.
//
//   $ ./vlsi_placement [seed]
#include <cstdlib>
#include <iostream>
#include <span>
#include <vector>

#include "gbis/core/compaction.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/graph/ops.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace {

using namespace gbis;

constexpr std::uint32_t kSide = 32;  // 1024 cells

/// A synthetic netlist whose latent layout is a kSide x kSide grid:
/// gates connect to their latent neighbors plus ~5% random long nets.
Graph make_netlist(Rng& rng) {
  const std::uint32_t n = kSide * kSide;
  GraphBuilder builder(n);
  for (std::uint32_t r = 0; r < kSide; ++r) {
    for (std::uint32_t c = 0; c < kSide; ++c) {
      const Vertex v = r * kSide + c;
      if (c + 1 < kSide) builder.add_edge(v, v + 1);
      if (r + 1 < kSide) builder.add_edge(v, v + kSide);
    }
  }
  for (std::uint32_t k = 0; k < n / 20; ++k) {
    const auto a = static_cast<Vertex>(rng.below(n));
    const auto b = static_cast<Vertex>(rng.below(n));
    if (a != b) builder.add_edge(a, b);  // duplicates merge harmlessly
  }
  return builder.build();
}

/// A placement: grid slot (row, col) per cell.
struct Slot {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
};

/// Recursively places `cells` into the window [r0, r0+rows) x
/// [c0, c0+cols). rows*cols == cells.size() always holds (power-of-two
/// windows, exact bisections).
void place_region(const Graph& netlist, std::vector<Vertex> cells,
                  std::uint32_t r0, std::uint32_t c0, std::uint32_t rows,
                  std::uint32_t cols, Rng& rng,
                  std::vector<Slot>& placement) {
  if (cells.size() == 1) {
    placement[cells.front()] = {r0, c0};
    return;
  }
  // Bisect the cells of this region (connectivity to other regions is
  // ignored — plain min-cut recursive bisection, no terminal
  // propagation).
  const Graph region = induced_subgraph(netlist, cells);
  const Bisection split = ckl(region, rng);

  std::vector<Vertex> half[2];
  half[0].reserve(cells.size() / 2);
  half[1].reserve(cells.size() / 2);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    half[split.side(static_cast<Vertex>(i))].push_back(cells[i]);
  }
  // Cut the window across its longer dimension.
  if (rows >= cols) {
    place_region(netlist, std::move(half[0]), r0, c0, rows / 2, cols, rng,
                 placement);
    place_region(netlist, std::move(half[1]), r0 + rows / 2, c0, rows / 2,
                 cols, rng, placement);
  } else {
    place_region(netlist, std::move(half[0]), r0, c0, rows, cols / 2, rng,
                 placement);
    place_region(netlist, std::move(half[1]), r0, c0 + cols / 2, rows,
                 cols / 2, rng, placement);
  }
}

std::uint64_t wirelength(const Graph& netlist,
                         const std::vector<Slot>& placement) {
  std::uint64_t total = 0;
  for (const Edge& e : netlist.edges()) {
    const Slot& a = placement[e.u];
    const Slot& b = placement[e.v];
    const std::uint64_t dr =
        a.row > b.row ? a.row - b.row : b.row - a.row;
    const std::uint64_t dc =
        a.col > b.col ? a.col - b.col : b.col - a.col;
    total += static_cast<std::uint64_t>(e.weight) * (dr + dc);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  Rng rng(seed);
  const Graph netlist = make_netlist(rng);
  const std::uint32_t n = netlist.num_vertices();
  std::cout << "Netlist: " << n << " cells, " << netlist.num_edges()
            << " nets (latent layout: " << kSide << "x" << kSide
            << " grid + long-range nets)\n\n";

  // Recursive-bisection placement.
  std::vector<Vertex> all(n);
  for (Vertex v = 0; v < n; ++v) all[v] = v;
  std::vector<Slot> placed(n);
  place_region(netlist, all, 0, 0, kSide, kSide, rng, placed);

  // Random placement baseline.
  std::vector<Vertex> perm(n);
  for (Vertex v = 0; v < n; ++v) perm[v] = v;
  rng.shuffle(perm);
  std::vector<Slot> random_placed(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    random_placed[perm[i]] = {i / kSide, i % kSide};
  }

  // The generator's latent layout (near-ideal for the local nets).
  std::vector<Slot> latent(n);
  for (std::uint32_t i = 0; i < n; ++i) latent[i] = {i / kSide, i % kSide};

  std::cout << "Total Manhattan wirelength\n";
  std::cout << "  random placement:              "
            << wirelength(netlist, random_placed) << '\n';
  std::cout << "  recursive bisection (CKL):     "
            << wirelength(netlist, placed) << '\n';
  std::cout << "  latent layout (reference):     "
            << wirelength(netlist, latent) << '\n';
  std::cout << "\nRecursive min-cut bisection should land far below the "
               "random placement and within a small factor of the latent "
               "layout.\n";
  return 0;
}
