// Netlist partitioning: the circuit-shaped version of the paper's
// problem. Generates (or loads, in hMETIS format) a netlist, then
// compares three routes to a min-net-cut bisection:
//   1. native hypergraph Fiduccia-Mattheyses,
//   2. clique expansion + the paper's compacted KL,
//   3. clique expansion + plain KL.
//
//   $ ./netlist_partition                 # generated planted netlist
//   $ ./netlist_partition design.hgr      # hMETIS file
#include <algorithm>
#include <iostream>
#include <limits>
#include <vector>

#include "gbis/core/compaction.hpp"
#include "gbis/hypergraph/expand.hpp"
#include "gbis/hypergraph/fm_hyper.hpp"
#include "gbis/hypergraph/netlist_gen.hpp"
#include "gbis/io/hmetis.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace {

using namespace gbis;

Weight net_cut_of(const Hypergraph& h,
                  const std::vector<std::uint8_t>& sides) {
  return HyperBisection(h, sides).cut();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gbis;
  Rng rng(2025);

  Hypergraph netlist;
  if (argc > 1) {
    try {
      netlist = read_hmetis_file(argv[1]);
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << '\n';
      return 1;
    }
  } else {
    const NetlistParams params{1500, 2200, 1.2};
    netlist = make_planted_netlist(params, 20, rng);
    std::cout << "(generated planted netlist; pass an .hgr file to use "
                 "your own)\n";
  }
  std::cout << "Netlist: " << netlist.num_cells() << " cells, "
            << netlist.num_nets() << " nets, " << netlist.num_pins()
            << " pins (avg net size " << netlist.average_net_size()
            << ")\n\n";

  constexpr int kStarts = 2;

  // 1. Native hypergraph FM.
  Weight fm_best = std::numeric_limits<Weight>::max();
  for (int s = 0; s < kStarts; ++s) {
    HyperBisection b = HyperBisection::random(netlist, rng);
    hyper_fm_refine(b);
    fm_best = std::min(fm_best, b.cut());
  }
  std::cout << "hypergraph FM:        net cut " << fm_best << '\n';

  // 2./3. Clique expansion + CKL / KL, scored by nets.
  const Graph clique = clique_expansion(netlist);
  Weight ckl_best = std::numeric_limits<Weight>::max();
  Weight kl_best = std::numeric_limits<Weight>::max();
  for (int s = 0; s < kStarts; ++s) {
    const Bisection via_ckl = ckl(clique, rng);
    ckl_best = std::min(
        ckl_best, net_cut_of(netlist, std::vector<std::uint8_t>(
                                          via_ckl.sides().begin(),
                                          via_ckl.sides().end())));
    Bisection via_kl = Bisection::random(clique, rng);
    kl_refine(via_kl);
    kl_best = std::min(
        kl_best, net_cut_of(netlist, std::vector<std::uint8_t>(
                                         via_kl.sides().begin(),
                                         via_kl.sides().end())));
  }
  std::cout << "clique + compacted KL: net cut " << ckl_best << '\n';
  std::cout << "clique + plain KL:     net cut " << kl_best << '\n';

  std::cout << "\nNative FM optimizes the net cut directly; the clique "
               "route optimizes a weighted-edge proxy, which the paper's "
               "compaction still improves.\n";
  return 0;
}
