// Compaction anatomy: a step-by-step walk through the paper's
// five-step heuristic on one instance, printing what each stage does —
// the matching size, the densification of G', the coarse cut, the
// projected starting cut on G, and the final refined cut — side by side
// with what plain KL achieves from a random start.
//
//   $ ./compaction_anatomy [seed]
#include <cstdlib>
#include <iostream>

#include "gbis/core/compaction.hpp"
#include "gbis/core/contract.hpp"
#include "gbis/core/matching.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

int main(int argc, char** argv) {
  using namespace gbis;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1989;
  Rng rng(seed);

  const RegularPlantedParams params{3000, 16, 3};
  const Graph g = make_regular_planted(params, rng);
  std::cout << "G: " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges, avg degree " << g.average_degree()
            << ", planted width " << params.b << "\n\n";

  // Step 1: maximal random matching.
  const Matching matching = maximal_matching(g, rng);
  std::cout << "step 1  matching:   " << matching.size() << " pairs ("
            << (200.0 * static_cast<double>(matching.size()) /
                g.num_vertices())
            << "% of vertices matched)\n";

  // Step 2: contraction.
  const Contraction contraction = contract_matching(g, matching, rng);
  const Graph& coarse = contraction.coarse;
  std::cout << "step 2  contract:   G' has " << coarse.num_vertices()
            << " vertices, " << coarse.num_edges()
            << " edges, avg degree " << coarse.average_degree()
            << "  <-- densified\n";

  // Step 3: bisect G'.
  Bisection coarse_bisection = Bisection::random(coarse, rng);
  const Weight coarse_start = coarse_bisection.cut();
  kl_refine(coarse_bisection);
  std::cout << "step 3  solve G':   random start " << coarse_start
            << " -> KL " << coarse_bisection.cut() << '\n';

  // Step 4: uncompact.
  Bisection fine(g, contraction.project(coarse_bisection.sides()));
  std::cout << "step 4  uncompact:  starting cut on G = " << fine.cut()
            << " (identical by construction)\n";

  // Step 5: refine on G.
  kl_refine(fine);
  std::cout << "step 5  refine G:   final CKL cut = " << fine.cut()
            << "\n\n";

  // Control: plain KL from a random start.
  Bisection plain = Bisection::random(g, rng);
  const Weight plain_start = plain.cut();
  kl_refine(plain);
  std::cout << "control plain KL:   random start " << plain_start
            << " -> " << plain.cut() << '\n';
  std::cout << "\nThe projected start (step 4) is the whole trick: KL "
               "descends from a near-planted configuration instead of a "
               "random one.\n";
  return 0;
}
