// Quickstart: the 60-second tour of the gbis public API.
//
// Generates a sparse random regular graph with a planted bisection
// (the paper's Gbreg model), then runs the four methods the paper
// compares — KL, SA, CKL, CSA — and prints what each found.
//
//   $ ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "gbis/core/compaction.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/sa/sa.hpp"

int main(int argc, char** argv) {
  using namespace gbis;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  Rng rng(seed);

  // A 2000-vertex 3-regular graph whose halves are joined by exactly 16
  // edges: the planted bisection width is 16, and (whp) optimal.
  const RegularPlantedParams params{2000, 16, 3};
  const Graph g = make_regular_planted(params, rng);
  std::cout << "Graph: " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges, planted bisection width "
            << params.b << "\n\n";

  // 1. Kernighan-Lin from a random start.
  Bisection kl_result = Bisection::random(g, rng);
  kl_refine(kl_result);
  std::cout << "KL   found cut " << kl_result.cut() << '\n';

  // 2. Simulated annealing from a random start.
  Bisection sa_result = Bisection::random(g, rng);
  sa_refine(sa_result, rng);
  std::cout << "SA   found cut " << sa_result.cut() << '\n';

  // 3. Compacted KL: match, contract, solve small, project, refine.
  const Bisection ckl_result = ckl(g, rng);
  std::cout << "CKL  found cut " << ckl_result.cut() << '\n';

  // 4. Compacted SA.
  const Bisection csa_result = csa(g, rng);
  std::cout << "CSA  found cut " << csa_result.cut() << '\n';

  std::cout << "\nOn degree-3 graphs, expect the compacted variants to "
               "land at (or near) the planted width while the plain "
               "variants land far above it — the paper's Observation 2.\n";
  return 0;
}
