#!/usr/bin/env bash
# Writes a stable-schema benchmark snapshot (BENCH_<date>.json at the
# repo root) from the google-benchmark microbenchmarks, so perf
# regressions show up as a diff between two checked-in snapshots.
#
# Usage: tools/bench_snapshot.sh [build-dir] [out-file]
#   build-dir  defaults to "build" (bench binaries in <build-dir>/bench)
#   out-file   defaults to BENCH_$(date -u +%Y%m%d).json at the repo root
#
# Schema (gbis-bench-snapshot-v1): one object per benchmark case with
# real/cpu time in nanoseconds plus the machine context of the run.
# Fields are append-only; consumers must ignore unknown keys.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_file="${2:-$repo_root/BENCH_$(date -u +%Y%m%d).json}"
bench_dir="$build_dir/bench"

command -v jq >/dev/null || { echo "bench_snapshot: jq not found" >&2; exit 1; }
[ -d "$bench_dir" ] || {
  echo "bench_snapshot: $bench_dir missing — build with GBIS_BUILD_BENCH=ON" >&2
  exit 1
}

# The microbenchmarks only: table reproducers take minutes and print
# human-layout tables, not machine-readable timings.
micro_benches=(micro_kl micro_sa micro_compaction micro_gen micro_obs
               svc_throughput svc_incremental)

tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

for name in "${micro_benches[@]}"; do
  bin="$bench_dir/$name"
  [ -x "$bin" ] || { echo "bench_snapshot: $bin missing" >&2; exit 1; }
  echo "bench_snapshot: running $name" >&2
  "$bin" --benchmark_format=json \
         --benchmark_min_time=0.1 \
         >"$tmp_dir/$name.json" \
    || { echo "bench_snapshot: $name failed" >&2; exit 1; }
done

# Merge: context from the first run, one flat entry per benchmark case.
jq -s \
  --arg schema "gbis-bench-snapshot-v1" \
  --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  --arg commit "$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)" \
  '{
    schema: $schema,
    date: $date,
    commit: $commit,
    context: (.[0].context | {
      host_name, num_cpus, mhz_per_cpu,
      cpu_scaling_enabled, library_build_type
    }),
    benchmarks: [ .[] | .benchmarks[] | {
      name, iterations,
      real_time_ns: (if .time_unit == "ms" then .real_time * 1e6
                     elif .time_unit == "us" then .real_time * 1e3
                     else .real_time end),
      cpu_time_ns:  (if .time_unit == "ms" then .cpu_time * 1e6
                     elif .time_unit == "us" then .cpu_time * 1e3
                     else .cpu_time end)
    }
    # Optional per-case service telemetry (svc_throughput emits these
    # as benchmark counters); absent for cases that do not report them.
    # restored_entries / post_restart_hit_ratio come from the
    # warm-restart cases (svc/cache_store); edit_distance / mean_cut /
    # warm_ratio from the incremental re-solve cases (svc_incremental).
    + ({latency_p50_us, latency_p99_us, hit_ratio,
        restored_entries, post_restart_hit_ratio,
        edit_distance, mean_cut, warm_ratio}
       | with_entries(select(.value != null))) ]
  }' "$tmp_dir"/*.json >"$out_file"

echo "bench_snapshot: wrote $out_file ($(jq '.benchmarks | length' "$out_file") cases)" >&2
