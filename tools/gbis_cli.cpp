// gbis — the command-line front end. Everything the library does,
// scriptable:
//
//   gbis gen <model> <args...> <out.graph>        generate an instance
//     models: gbreg <2n> <b> <d> | g2set <2n> <deg> <b> | gnp <n> <deg>
//             grid <rows> <cols> | ladder <rungs> | bintree <n>
//             geometric <n> <deg> | smallworld <n> <k> <beta>
//             prefattach <n> <m>
//   gbis solve <in.graph> <method> [out.part]     bisect (kl sa ckl csa
//                                                 fm cfm mlkl greedy path
//                                                 greedy_hc spectral
//                                                 random quench)
//   gbis campaign <methods-csv> <graph...>        fault-isolated trial
//     [--starts N] [--deadline S]                 matrix with optional
//     [--journal J] [--resume J]                  checkpointing/resume
//   gbis kway <in.graph> <k> [out.part]           recursive k-way (CKL)
//   gbis eval <in.graph> <in.part>                score a partition
//   gbis stats <in.graph>                         structural report
//   gbis convert <in.graph> <out.{graph|metis|dot}>
//   gbis serve [--replay FILE] [flags]            NDJSON partition
//                                                 service on stdin/
//                                                 stdout (docs/
//                                                 SERVICE.md)
//
// Graph files are gbis edge-list format unless the name ends in
// ".metis". Global flags, accepted anywhere: --seed <n> (default 42),
// --threads <n> (trial-runner workers; default 0 = hardware
// concurrency; cuts are identical for any value), plus the
// observability trio --metrics <file> / --trace-dir <dir> /
// --progress (env forms GBIS_METRICS / GBIS_TRACE_DIR /
// GBIS_PROGRESS; the flags win). `--help` prints the full reference.
//
// Exit codes: 0 success, 1 internal error, 2 usage error, 3 I/O error,
// 130 interrupted (SIGINT/SIGTERM; campaigns journal first). All
// diagnostics go to stderr; stdout carries only results.
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "gbis/baseline/hill_climb.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/models.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/analysis.hpp"
#include "gbis/graph/ops.hpp"
#include "gbis/harness/checkpoint.hpp"
#include "gbis/harness/runner.hpp"
#include "gbis/harness/shutdown.hpp"
#include "gbis/harness/table.hpp"
#include "gbis/harness/timer.hpp"
#include "gbis/io/dot.hpp"
#include "gbis/io/edge_list.hpp"
#include "gbis/io/io_error.hpp"
#include "gbis/io/metis.hpp"
#include "gbis/io/partition_io.hpp"
#include "gbis/methods/registry.hpp"
#include "gbis/kway/recursive.hpp"
#include "gbis/kway/refine.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/partition/metrics.hpp"
#include "gbis/obs/progress.hpp"
#include "gbis/obs/prom_export.hpp"
#include "gbis/obs/span.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/svc/listener.hpp"
#include "gbis/svc/scheduler.hpp"
#include "gbis/util/json_lite.hpp"

#include <fstream>

namespace {

using namespace gbis;

// Exit codes (documented in --help and docs/ROBUSTNESS.md).
constexpr int kExitOk = 0;
constexpr int kExitInternal = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;
constexpr int kExitInterrupted = 130;  // 128 + SIGINT, shell convention

void print_help(std::ostream& out) {
  out << "gbis — graph bisection toolkit (KL / SA / compaction)\n"
         "\n"
         "usage: gbis [--seed N] [--threads N] <command> <args...>\n"
         "\n"
         "commands:\n"
         "  gen <model> <args...> <out.graph>   generate an instance\n"
         "      gbreg <2n> <b> <d> | g2set <2n> <deg> <b> | gnp <n> <deg>\n"
         "      grid <rows> <cols> | ladder <rungs> | bintree <n>\n"
         "      geometric <n> <deg> | smallworld <n> <k> <beta>\n"
         "      prefattach <n> <m>\n"
         "  solve <in.graph> <method> [out.part]\n"
         "      methods: kl sa ckl csa fm cfm mlkl greedy path greedy_hc\n"
         "      spectral random quench\n"
         "  campaign <methods-csv> <graph...> [flags]\n"
         "      runs every (graph, method, start) as a fault-isolated\n"
         "      trial; failures degrade cells instead of aborting\n"
         "      --starts N     independent starts per cell (default 2)\n"
         "      --deadline S   per-trial budget in seconds (default: none)\n"
         "      --journal J    checkpoint completed trials to JSONL file J\n"
         "      --resume J     adopt completed trials from J and continue\n"
         "  kway <in.graph> <k> [out.part]      recursive k-way (CKL)\n"
         "  eval <in.graph> <in.part>           score a partition\n"
         "  stats <in.graph>                    structural report\n"
         "  convert <in.graph> <out.{graph|metis|dot}>\n"
         "  serve [flags]                       NDJSON partition service:\n"
         "      one request object per stdin line, one response per\n"
         "      stdout line, in request order (schema: docs/SERVICE.md).\n"
         "      Response streams are byte-identical for any --threads /\n"
         "      GBIS_THREADS value.\n"
         "      --replay FILE  read requests from FILE instead of stdin\n"
         "      --batch N      dispatch window / coalescing width (16)\n"
         "      --max-queue N  admission bound; overflow is rejected (256)\n"
         "      --cache-mb N   result-cache budget in MiB, 0 = off (64;\n"
         "                     env GBIS_SVC_CACHE_MB, flag wins)\n"
         "      --cache-file F durable result-cache journal; a restart\n"
         "                     replays it so pre-crash solves answer as\n"
         "                     byte-identical warm hits (env\n"
         "                     GBIS_SVC_CACHE_FILE, flag wins)\n"
         "      --graph-mb N   graph-store budget in MiB for graphs\n"
         "                     referenced by fingerprint (256; env\n"
         "                     GBIS_SVC_GRAPH_MB, flag wins)\n"
         "      --no-warm      disable lineage warm-start solves; every\n"
         "                     solve runs the cold portfolio (env\n"
         "                     GBIS_SVC_WARM=0)\n"
         "      --no-brownout  disable the overload brownout ladder\n"
         "                     (env GBIS_SVC_BROWNOUT=0)\n"
         "      --brownout-window N  cold solves in the deadline-miss\n"
         "                     window the brownout controller watches\n"
         "                     (32; env GBIS_SVC_BROWNOUT_WINDOW)\n"
         "      --budget N     default trials per solve request (2)\n"
         "      --quality Q    default ladder rung for auto solves:\n"
         "                     fast|balanced|best (best; env\n"
         "                     GBIS_SVC_QUALITY, flag wins)\n"
         "      --deadline S   default per-request deadline (none)\n"
         "      --access-log F append one JSON line per request to F\n"
         "                     (env GBIS_SVC_ACCESS_LOG, flag wins)\n"
         "      --access-log-max-mb N  rotate the access log to F.1 when\n"
         "                     appending would cross N MiB (0 = unbounded;\n"
         "                     env GBIS_SVC_ACCESS_LOG_MAX_MB)\n"
         "      --flight-file F arm the flight recorder: SIGQUIT and the\n"
         "                     crash path dump recent + in-flight request\n"
         "                     spans to F as JSONL (env GBIS_SVC_FLIGHT)\n"
         "      --flight-ring N completed span sets the recorder retains\n"
         "                     (64; env GBIS_SVC_FLIGHT_RING)\n"
         "      --slow-ms M    sample requests slower than M ms into\n"
         "                     <trace-dir>/trace.json (0 = all; env\n"
         "                     GBIS_SVC_SLOW_MS, flag wins)\n"
         "      --stats-file F republish a Prometheus text exposition\n"
         "                     to F (atomic rename), plus once at exit\n"
         "      --stats-interval S  seconds between republishes (10)\n"
         "      --listen HOST:PORT  serve NDJSON over TCP instead of\n"
         "                     stdio (port 0 = ephemeral; env\n"
         "                     GBIS_SVC_LISTEN, flag wins)\n"
         "      --listen-unix PATH  ditto on a Unix-domain socket (env\n"
         "                     GBIS_SVC_LISTEN_UNIX); both listeners may\n"
         "                     run at once; neither combines with\n"
         "                     --replay\n"
         "      --max-conns N  connection bound; accepts beyond it get\n"
         "                     one structured reject line (1024)\n"
         "      --conn-quota N per-connection in-flight request bound\n"
         "                     (64)\n"
         "      --write-timeout S  disconnect a client making no read\n"
         "                     progress for S seconds (10)\n"
         "      --max-line-bytes N  reject request lines longer than N\n"
         "                     bytes and resync (4194304)\n"
         "      --ready-file F publish the bound endpoints to F once\n"
         "                     listening (how scripts find port 0)\n"
         "      Runs a single-threaded poll(2) loop; SIGINT/SIGTERM\n"
         "      stops accepting, answers everything admitted, and exits\n"
         "      130; a second signal skips the pending answers and just\n"
         "      flushes logs before exiting 130. Per-connection response\n"
         "      streams keep the stdio determinism contract for any\n"
         "      --threads value.\n"
         "      Request {\"op\":\"stats\"} reports counters, gauges, and\n"
         "      latency summaries; \"format\":\"prom\" returns the\n"
         "      Prometheus exposition instead. {\"op\":\"trace\"} exports\n"
         "      recent request spans (or one set by trace id). --progress\n"
         "      shows a live requests/s line on stderr.\n"
         "\n"
         "global flags:\n"
         "  --seed N        base seed (default 42)\n"
         "  --threads N     trial-runner workers (default 0 = hardware\n"
         "                  concurrency; cuts are bit-identical for any\n"
         "                  value)\n"
         "  --metrics FILE  write aggregated per-trial metrics JSON\n"
         "  --trace-dir D   write convergence.{jsonl,csv} and a Chrome/\n"
         "                  Perfetto trace.json under directory D\n"
         "  --progress      live stderr progress line for trial batches\n"
         "\n"
         "exit codes:\n"
         "  0    success\n"
         "  1    internal error (bug or unexpected failure)\n"
         "  2    usage error (bad command line)\n"
         "  3    I/O error (missing/malformed file)\n"
         "  130  interrupted by SIGINT/SIGTERM; an interrupted campaign\n"
         "       flushes its journal first and prints a --resume hint\n"
         "\n"
         "Diagnostics go to stderr; stdout carries only results.\n"
         "GBIS_FAULTS=kind@trial:ID[,...] injects deterministic faults\n"
         "into campaign trials (kinds: throw, hang, stop) — see\n"
         "docs/ROBUSTNESS.md. GBIS_METRICS, GBIS_TRACE_DIR, and\n"
         "GBIS_PROGRESS=1 are the environment forms of --metrics,\n"
         "--trace-dir, and --progress (flags win); GBIS_SVC_CACHE_MB,\n"
         "GBIS_SVC_CACHE_FILE, GBIS_SVC_ACCESS_LOG, GBIS_SVC_SLOW_MS,\n"
         "GBIS_SVC_BROWNOUT, GBIS_SVC_BROWNOUT_WINDOW, GBIS_SVC_GRAPH_MB,\n"
         "GBIS_SVC_WARM, GBIS_SVC_QUALITY, GBIS_SVC_FLIGHT,\n"
         "GBIS_SVC_FLIGHT_RING, and GBIS_SVC_ACCESS_LOG_MAX_MB do the same\n"
         "for the serve flags; GBIS_SVC_FAULTS=kind@site:N[,...] injects\n"
         "service-scoped faults (kinds: throw, hang, oom, crash; sites:\n"
         "req, solve, batch) — see docs/OBSERVABILITY.md,\n"
         "docs/SERVICE.md, docs/ROBUSTNESS.md, and the README env-var\n"
         "table.\n";
}

[[noreturn]] void usage() {
  std::cerr << "usage: gbis [--seed N] [--threads N] <command> <args...>\n"
               "commands: gen | solve | campaign | kway | eval | stats | "
               "convert | serve\n"
               "run 'gbis --help' for the full reference\n";
  std::exit(kExitUsage);
}

bool ends_with(const std::string& value, const std::string& suffix) {
  return value.size() >= suffix.size() &&
         value.compare(value.size() - suffix.size(), suffix.size(),
                       suffix) == 0;
}

Graph load_graph(const std::string& path) {
  return ends_with(path, ".metis") ? read_metis_file(path)
                                   : read_edge_list_file(path);
}

void save_graph(const std::string& path, const Graph& g) {
  if (ends_with(path, ".metis")) {
    write_metis_file(path, g);
  } else if (ends_with(path, ".dot")) {
    write_dot_file(path, g);
  } else {
    write_edge_list_file(path, g);
  }
}

double to_double(const std::string& s) { return std::strtod(s.c_str(), nullptr); }
std::uint64_t to_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}
std::uint32_t to_u32(const std::string& s) {
  return static_cast<std::uint32_t>(to_u64(s));
}

int cmd_gen(const std::vector<std::string>& args, Rng& rng) {
  if (args.size() < 2) usage();
  const std::string& model = args[0];
  const std::string& out_path = args.back();
  Graph g;
  if (model == "gbreg" && args.size() == 5) {
    g = make_regular_planted({to_u32(args[1]), to_u64(args[2]),
                              to_u32(args[3])},
                             rng);
  } else if (model == "g2set" && args.size() == 5) {
    g = make_planted(
        planted_params_for_degree(to_u32(args[1]), to_double(args[2]),
                                  to_u64(args[3])),
        rng);
  } else if (model == "gnp" && args.size() == 4) {
    g = make_gnp(to_u32(args[1]),
                 gnp_p_for_degree(to_u32(args[1]), to_double(args[2])), rng);
  } else if (model == "grid" && args.size() == 4) {
    g = make_grid(to_u32(args[1]), to_u32(args[2]));
  } else if (model == "ladder" && args.size() == 3) {
    g = make_ladder(to_u32(args[1]));
  } else if (model == "bintree" && args.size() == 3) {
    g = make_binary_tree(to_u32(args[1]));
  } else if (model == "geometric" && args.size() == 4) {
    g = make_geometric(
        to_u32(args[1]),
        geometric_radius_for_degree(to_u32(args[1]), to_double(args[2])),
        rng);
  } else if (model == "smallworld" && args.size() == 5) {
    g = make_small_world(to_u32(args[1]), to_u32(args[2]),
                         to_double(args[3]), rng);
  } else if (model == "prefattach" && args.size() == 4) {
    g = make_preferential_attachment(to_u32(args[1]), to_u32(args[2]), rng);
  } else {
    usage();
  }
  save_graph(out_path, g);
  std::cout << "wrote " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges to " << out_path << '\n';
  return kExitOk;
}

Method parse_method(const std::string& name) {
  Method method;
  if (method_from_name(name, method)) return method;
  throw std::invalid_argument("unknown method: " + name);
}

int cmd_solve(const std::vector<std::string>& args, Rng& rng,
              std::uint32_t threads, const ObsOptions& obs) {
  if (args.size() < 2 || args.size() > 3) usage();
  const Graph g = load_graph(args[0]);

  // "quench" is CLI-only (not a harness Method): run it directly.
  std::vector<std::uint8_t> sides;
  Weight cut = 0;
  const WallTimer timer;
  if (args[1] == "quench") {
    Bisection b = Bisection::random(g, rng);
    hill_climb(b, rng);
    cut = b.cut();
    sides.assign(b.sides().begin(), b.sides().end());
  } else {
    const Method method = parse_method(args[1]);
    RunConfig config;
    config.starts = 2;
    config.threads = threads;
    config.obs = obs;
    const RunResult result = run_method(g, method, rng, config, &sides);
    cut = result.best_cut;
    std::cout << "cut " << cut << " in " << result.cpu_seconds
              << " cpu-s (" << result.wall_seconds << " wall-s) over "
              << config.starts << " starts\n";
    if (result.degraded_starts > 0) {
      std::cerr << "warning: " << result.degraded_starts
                << " start(s) did not finish";
      if (!result.first_error.empty()) {
        std::cerr << " (" << result.first_error << ")";
      }
      std::cerr << "; best cut is over the remaining starts\n";
    }
    if (args.size() == 3) {
      std::vector<std::uint32_t> parts(sides.begin(), sides.end());
      write_partition_file(args[2], parts);
      std::cout << "wrote partition to " << args[2] << '\n';
    }
    return kExitOk;
  }
  const double seconds = timer.elapsed_seconds();
  std::cout << "cut " << cut << " in " << seconds << " s\n";
  if (args.size() == 3) {
    std::vector<std::uint32_t> parts(sides.begin(), sides.end());
    write_partition_file(args[2], parts);
    std::cout << "wrote partition to " << args[2] << '\n';
  }
  return kExitOk;
}

std::vector<Method> parse_method_csv(const std::string& csv) {
  std::vector<Method> methods;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::string name =
        csv.substr(begin, comma == std::string::npos ? std::string::npos
                                                     : comma - begin);
    if (!name.empty()) methods.push_back(parse_method(name));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (methods.empty()) {
    throw std::invalid_argument("campaign: no methods in \"" + csv + "\"");
  }
  return methods;
}

int cmd_campaign(const std::vector<std::string>& args, std::uint64_t seed,
                 std::uint32_t threads, const ObsOptions& obs) {
  RunConfig config;
  config.starts = 2;
  config.threads = threads;
  config.obs = obs;
  CampaignOptions options;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto flag_value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage();
      return args[++i];
    };
    if (arg == "--starts") {
      config.starts = to_u32(flag_value());
      if (config.starts == 0) usage();
    } else if (arg == "--deadline") {
      config.trial_deadline = to_double(flag_value());
    } else if (arg == "--journal") {
      options.journal_path = flag_value();
    } else if (arg == "--resume") {
      options.resume_path = flag_value();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "campaign: unknown flag " << arg << '\n';
      usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 2) usage();
  // Resuming without a fresh journal path continues the same journal.
  if (options.journal_path.empty() && !options.resume_path.empty()) {
    options.journal_path = options.resume_path;
  }

  const std::vector<Method> methods = parse_method_csv(positional[0]);
  std::vector<Graph> graphs;
  std::vector<std::string> graph_names;
  for (std::size_t i = 1; i < positional.size(); ++i) {
    graphs.push_back(load_graph(positional[i]));
    graph_names.push_back(positional[i]);
  }

  install_shutdown_handlers();
  options.stop = &shutdown_flag();

  const WallTimer timer;
  const CampaignResult result =
      run_campaign(graphs, methods, config, seed, options);

  // Per-cell table: best cut for ok cells, the status marker otherwise.
  std::vector<TablePrinter::Column> columns{{"graph", 20}};
  for (const Method m : methods) columns.push_back({method_name(m), 8});
  TablePrinter table(std::cout, std::move(columns));
  table.print_header();
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    table.cell(graph_names[g]);
    for (std::size_t m = 0; m < methods.size(); ++m) {
      const MethodOutcome& cell = result.cells[g * methods.size() + m];
      if (cell.status == TrialStatus::kOk) {
        table.cell(static_cast<std::int64_t>(cell.best_cut));
      } else {
        table.cell(trial_status_cell(cell.status));
      }
    }
    table.end_row();
  }
  std::cout << "trials: " << result.ok << " ok, " << result.failed
            << " failed, " << result.timed_out << " timed out, "
            << result.skipped << " skipped";
  if (result.resumed > 0) std::cout << " (" << result.resumed << " resumed)";
  std::cout << "; wall " << timer.elapsed_seconds() << " s\n";
  if (result.failed > 0 || result.timed_out > 0) {
    std::cerr << "warning: " << (result.failed + result.timed_out)
              << " trial(s) degraded (err = failed, t/o = deadline)\n";
  }

  if (result.interrupted) {
    std::cerr << "interrupted: " << result.skipped << " trial(s) not run";
    if (!options.journal_path.empty()) {
      std::cerr << "; resume with: gbis campaign ... --resume "
                << options.journal_path;
    }
    std::cerr << '\n';
    return kExitInterrupted;
  }
  return kExitOk;
}

int cmd_kway(const std::vector<std::string>& args, Rng& rng) {
  if (args.size() < 2 || args.size() > 3) usage();
  const Graph g = load_graph(args[0]);
  const std::uint32_t k = to_u32(args[1]);
  const WallTimer timer;
  KwayPartition p = recursive_kway(g, k, rng);
  p = kway_refine(p, rng);
  std::cout << "k=" << k << " edge cut " << p.edge_cut()
            << ", balance factor " << p.balance_factor() << ", in "
            << timer.elapsed_seconds() << " s\n";
  if (args.size() == 3) {
    write_partition_file(args[2],
                         std::vector<std::uint32_t>(p.parts().begin(),
                                                    p.parts().end()));
    std::cout << "wrote partition to " << args[2] << '\n';
  }
  return kExitOk;
}

int cmd_eval(const std::vector<std::string>& args) {
  if (args.size() != 2) usage();
  const Graph g = load_graph(args[0]);
  const auto parts = read_partition_file(args[1], g.num_vertices());
  std::uint32_t k = 1;
  for (std::uint32_t p : parts) k = std::max(k, p + 1);
  const KwayPartition partition(g, k, parts);
  std::cout << "k=" << k << " edge cut " << partition.edge_cut()
            << ", balance factor " << partition.balance_factor()
            << ", max count spread " << partition.max_count_spread() << '\n';
  if (k == 2) {
    std::vector<std::uint8_t> sides(parts.begin(), parts.end());
    const Bisection b(g, std::move(sides));
    const BisectionMetrics m = bisection_metrics(b);
    std::cout << "bisection: conductance " << m.conductance
              << ", expansion " << m.expansion << ", vs-random "
              << m.vs_random << '\n';
  }
  return kExitOk;
}

int cmd_stats(const std::vector<std::string>& args) {
  if (args.size() != 1) usage();
  const Graph g = load_graph(args[0]);
  const DegreeStats degrees = degree_stats(g);
  std::cout << "vertices " << g.num_vertices() << ", edges "
            << g.num_edges() << '\n';
  std::cout << "degree min/avg/max " << degrees.min << "/"
            << degrees.average << "/" << degrees.max << '\n';
  std::cout << "components " << connected_components(g).count
            << ", forest " << (is_forest(g) ? "yes" : "no") << '\n';
  if (g.num_vertices() > 0) {
    std::cout << "degeneracy " << degeneracy(g) << ", triangles "
              << triangle_count(g) << ", clustering "
              << global_clustering(g) << ", pseudo-diameter "
              << pseudo_diameter(g) << '\n';
  }
  return kExitOk;
}

int cmd_convert(const std::vector<std::string>& args) {
  if (args.size() != 2) usage();
  save_graph(args[1], load_graph(args[0]));
  std::cout << "converted " << args[0] << " -> " << args[1] << '\n';
  return kExitOk;
}

int cmd_serve(const std::vector<std::string>& args, std::uint64_t seed,
              std::uint32_t threads, const ObsOptions& obs) {
  // Env first (GBIS_SVC_CACHE_MB / GBIS_SVC_ACCESS_LOG /
  // GBIS_SVC_SLOW_MS), explicit flags override — the same precedence
  // as the observability knobs.
  SvcOptions options = svc_options_from_env(SvcOptions{});
  options.default_seed = seed;
  options.threads = threads;
  ListenerOptions listen = listener_options_from_env(ListenerOptions{});
  std::string replay_path;
  std::string stats_path;
  double stats_interval = 10.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto flag_value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage();
      return args[++i];
    };
    if (arg == "--replay") {
      replay_path = flag_value();
    } else if (arg == "--batch") {
      options.batch_size = to_u64(flag_value());
      if (options.batch_size == 0) usage();
    } else if (arg == "--max-queue") {
      options.max_queue = to_u64(flag_value());
      if (options.max_queue == 0) usage();
    } else if (arg == "--cache-mb") {
      options.cache_bytes = to_u64(flag_value()) << 20;
    } else if (arg == "--cache-file") {
      options.cache_file = flag_value();
      if (options.cache_file.empty()) usage();
    } else if (arg == "--graph-mb") {
      options.graph_store_bytes = to_u64(flag_value()) << 20;
    } else if (arg == "--no-warm") {
      options.warm = false;
    } else if (arg == "--no-brownout") {
      options.brownout = false;
    } else if (arg == "--brownout-window") {
      options.brownout_window = to_u32(flag_value());
      if (options.brownout_window == 0) usage();
    } else if (arg == "--budget") {
      options.default_budget = to_u32(flag_value());
      if (options.default_budget == 0) usage();
    } else if (arg == "--quality") {
      if (!quality_tier_from_name(flag_value(), options.default_quality)) {
        std::cerr << "serve: unknown quality tier\n";
        usage();
      }
    } else if (arg == "--deadline") {
      options.default_deadline_seconds = to_double(flag_value());
    } else if (arg == "--access-log") {
      options.access_log_path = flag_value();
      if (options.access_log_path.empty()) usage();
    } else if (arg == "--access-log-max-mb") {
      options.access_log_max_mb = to_u64(flag_value());
    } else if (arg == "--flight-file") {
      options.flight_file = flag_value();
      if (options.flight_file.empty()) usage();
    } else if (arg == "--flight-ring") {
      options.flight_ring = to_u64(flag_value());
      if (options.flight_ring == 0) usage();
    } else if (arg == "--slow-ms") {
      options.slow_ms = to_double(flag_value());
      if (!(options.slow_ms >= 0)) usage();
    } else if (arg == "--stats-file") {
      stats_path = flag_value();
      if (stats_path.empty()) usage();
    } else if (arg == "--stats-interval") {
      stats_interval = to_double(flag_value());
      if (!(stats_interval > 0)) usage();
    } else if (arg == "--listen") {
      listen.tcp_endpoint = flag_value();
      if (listen.tcp_endpoint.empty()) usage();
    } else if (arg == "--listen-unix") {
      listen.unix_path = flag_value();
      if (listen.unix_path.empty()) usage();
    } else if (arg == "--max-conns") {
      listen.max_connections = to_u64(flag_value());
      if (listen.max_connections == 0) usage();
    } else if (arg == "--conn-quota") {
      listen.conn_request_quota = to_u64(flag_value());
      if (listen.conn_request_quota == 0) usage();
    } else if (arg == "--write-timeout") {
      listen.write_timeout_seconds = to_double(flag_value());
      if (!(listen.write_timeout_seconds > 0)) usage();
    } else if (arg == "--max-line-bytes") {
      listen.max_line_bytes = to_u64(flag_value());
      if (listen.max_line_bytes == 0) usage();
    } else if (arg == "--ready-file") {
      listen.ready_file = flag_value();
      if (listen.ready_file.empty()) usage();
    } else {
      std::cerr << "serve: unknown argument " << arg << '\n';
      usage();
    }
  }
  // The serve loop honors GBIS_THREADS like the experiment binaries
  // (an explicit --threads value wins; both produce identical bytes).
  if (options.threads == 0) {
    if (const char* v = std::getenv("GBIS_THREADS"); v != nullptr) {
      options.threads =
          static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    }
  }

  // Socket mode and the stdio determinism harness are distinct modes:
  // --replay exists to assert byte-identical response streams, which
  // only makes sense on the single stdin/stdout stream.
  const bool socket_mode =
      !listen.tcp_endpoint.empty() || !listen.unix_path.empty();
  if (socket_mode && !replay_path.empty()) {
    std::cerr << "serve: --replay cannot be combined with "
                 "--listen/--listen-unix\n";
    usage();
  }

  std::ifstream replay;
  if (!replay_path.empty()) {
    replay.open(replay_path);
    if (!replay.is_open()) {
      throw IoError("serve: cannot open replay file " + replay_path);
    }
  }
  std::istream& in = replay_path.empty() ? std::cin : replay;

  // Escalating handlers: the first SIGINT/SIGTERM drains gracefully;
  // a second one flips the escalation flag so the drain below answers
  // nothing new and just flushes what is already written.
  install_escalating_shutdown_handlers();
  // SIGQUIT dumps the flight recorder (when --flight-file armed it) and
  // keeps serving — the "what is it doing right now" probe.
  install_flight_dump_handler();
  const std::atomic<bool>& stop = shutdown_flag();

  Service service(options);
  if (!service.access_log_ok()) {
    throw IoError("serve: cannot open access log " + options.access_log_path);
  }
  if (!service.cache_store_ok()) {
    throw IoError("serve: cannot open cache journal " + options.cache_file);
  }
  if (!service.flight_ok()) {
    throw IoError("serve: cannot open flight file " + options.flight_file);
  }

  // --progress: the serve-style meter (open-ended total, requests/s).
  // Responses classify by their own bytes: ok, rejected:, or err.
  std::unique_ptr<ProgressMeter> meter;
  if (obs.progress) {
    meter = std::make_unique<ProgressMeter>(0, nullptr, 0.1,
                                            ProgressStyle::kRequests);
  }

  // --stats-file: a Prometheus text exposition of the service metrics,
  // republished atomically (tmp + rename) at most every
  // --stats-interval seconds, plus once at exit.
  const auto write_stats_snapshot = [&service, &stats_path]() {
    if (stats_path.empty()) return;
    const std::string tmp = stats_path + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw IoError("serve: cannot open stats file " + tmp);
    service.write_prom(out);
    out.flush();
    if (!out) throw IoError("serve: stats write failed: " + tmp);
    out.close();
    std::error_code ec;
    std::filesystem::rename(tmp, stats_path, ec);
    if (ec) {
      throw IoError("serve: cannot publish stats file " + stats_path + ": " +
                    ec.message());
    }
  };
  const WallTimer stats_clock;
  double last_stats_write = 0;

  std::vector<std::string> responses;
  const auto emit = [&responses, &meter]() {
    for (const std::string& line : responses) {
      std::cout << line << '\n';
      if (meter != nullptr) {
        bool ok = false;
        json_parse_bool(line, "ok", ok);
        if (ok) {
          meter->record(ProgressOutcome::kOk);
        } else {
          std::string error;
          json_parse_string(line, "error", error);
          meter->record(error.rfind("rejected:", 0) == 0
                            ? ProgressOutcome::kSkipped
                            : ProgressOutcome::kFailed);
        }
      }
    }
    if (!responses.empty()) std::cout.flush();
    responses.clear();
  };

  if (socket_mode) {
    // Socket mode: the listener's event loop drives the service; the
    // --progress meter classifies via the per-response hook since
    // responses go to sockets, not stdout.
    if (meter != nullptr) {
      ProgressMeter* raw_meter = meter.get();
      listen.on_response = [raw_meter](const std::string& response) {
        bool ok = false;
        json_parse_bool(response, "ok", ok);
        if (ok) {
          raw_meter->record(ProgressOutcome::kOk);
        } else {
          std::string error;
          json_parse_string(response, "error", error);
          raw_meter->record(error.rfind("rejected:", 0) == 0
                                ? ProgressOutcome::kSkipped
                                : ProgressOutcome::kFailed);
        }
      };
    }
    Listener listener(service, listen);
    listener.start();
    if (!listener.tcp_endpoint().empty()) {
      std::cerr << "serve: listening tcp " << listener.tcp_endpoint() << '\n';
    }
    if (!listener.unix_endpoint().empty()) {
      std::cerr << "serve: listening unix " << listener.unix_endpoint()
                << '\n';
    }
    while (!stop.load(std::memory_order_acquire)) {
      listener.poll_once(/*timeout_ms=*/200, &stop);
      if (!stats_path.empty() &&
          stats_clock.elapsed_seconds() - last_stats_write >=
              stats_interval) {
        write_stats_snapshot();
        last_stats_write = stats_clock.elapsed_seconds();
      }
    }
    // SIGINT/SIGTERM: stop accepting, answer everything admitted,
    // flush, close — then the interrupted exit code below.
    listener.drain(&stop);
  } else {
    std::string line;
    while (!stop.load(std::memory_order_acquire) && std::getline(in, line)) {
      if (line.empty()) continue;
      service.submit_line(line, responses);
      if (service.pending() >= service.options().batch_size) {
        service.process_batch(responses, &stop);
      }
      emit();
      if (!stats_path.empty() &&
          stats_clock.elapsed_seconds() - last_stats_write >=
              stats_interval) {
        write_stats_snapshot();
        last_stats_write = stats_clock.elapsed_seconds();
      }
    }
    // EOF or shutdown: answer everything admitted (queued solves drain
    // as "shutdown" errors once the stop flag is up), then exit. A
    // second signal (escalation) skips even that — flush and go.
    if (!shutdown_escalated()) {
      service.drain(responses, &stop);
      emit();
    }
  }
  if (meter != nullptr) meter->finish();
  write_stats_snapshot();
  // Slow-request samples go to the same trace.json slot the campaign
  // exporter uses (the two modes never share a --trace-dir run).
  if (options.slow_ms >= 0 && !obs.trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(obs.trace_dir, ec);
    if (ec) {
      throw IoError("serve: cannot create directory " + obs.trace_dir + ": " +
                    ec.message());
    }
    const std::string path =
        (std::filesystem::path(obs.trace_dir) / "trace.json").string();
    std::ofstream out(path, std::ios::trunc);
    if (!out) throw IoError("serve: cannot open " + path);
    write_svc_trace(out, service.slow_samples());
    out.flush();
    if (!out) throw IoError("serve: trace write failed: " + path);
    // Companion span dump: the flight ring's completed sets as Chrome
    // trace events (spans.json next to trace.json).
    const std::string spans_path =
        (std::filesystem::path(obs.trace_dir) / "spans.json").string();
    std::ofstream spans_out(spans_path, std::ios::trunc);
    if (!spans_out) throw IoError("serve: cannot open " + spans_path);
    write_span_chrome_trace(spans_out, service.flight().completed());
    spans_out.flush();
    if (!spans_out) throw IoError("serve: trace write failed: " + spans_path);
  }
  return stop.load(std::memory_order_acquire) ? kExitInterrupted : kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::uint64_t seed = 42;
  std::uint32_t threads = 0;  // 0 = hardware concurrency
  // Env first (GBIS_METRICS / GBIS_TRACE_DIR / GBIS_PROGRESS), then the
  // explicit flags below override it.
  ObsOptions obs = obs_options_from_env();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0 ||
        std::strcmp(argv[i], "help") == 0) {
      print_help(std::cout);
      return kExitOk;
    }
    if (std::strcmp(argv[i], "--seed") == 0) {
      if (i + 1 >= argc) usage();  // dangling flag: don't eat it as a path
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) usage();
      threads =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      if (i + 1 >= argc) usage();
      obs.metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-dir") == 0) {
      if (i + 1 >= argc) usage();
      obs.trace_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      obs.progress = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) usage();
  const std::string command = args.front();
  args.erase(args.begin());
  Rng rng(seed);
  try {
    if (command == "gen") return cmd_gen(args, rng);
    if (command == "solve") return cmd_solve(args, rng, threads, obs);
    if (command == "campaign") return cmd_campaign(args, seed, threads, obs);
    if (command == "kway") return cmd_kway(args, rng);
    if (command == "eval") return cmd_eval(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "convert") return cmd_convert(args);
    if (command == "serve") return cmd_serve(args, seed, threads, obs);
  } catch (const IoError& error) {
    std::cerr << "error: " << error.what() << '\n';
    return kExitIo;
  } catch (const std::invalid_argument& error) {
    std::cerr << "error: " << error.what() << '\n';
    return kExitUsage;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return kExitInternal;
  }
  usage();
}
