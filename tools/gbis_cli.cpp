// gbis — the command-line front end. Everything the library does,
// scriptable:
//
//   gbis gen <model> <args...> <out.graph>        generate an instance
//     models: gbreg <2n> <b> <d> | g2set <2n> <deg> <b> | gnp <n> <deg>
//             grid <rows> <cols> | ladder <rungs> | bintree <n>
//             geometric <n> <deg> | smallworld <n> <k> <beta>
//             prefattach <n> <m>
//   gbis solve <in.graph> <method> [out.part]     bisect (kl sa ckl csa
//                                                 fm cfm mlkl greedy
//                                                 spectral random quench)
//   gbis kway <in.graph> <k> [out.part]           recursive k-way (CKL)
//   gbis eval <in.graph> <in.part>                score a partition
//   gbis stats <in.graph>                         structural report
//   gbis convert <in.graph> <out.{graph|metis|dot}>
//
// Graph files are gbis edge-list format unless the name ends in
// ".metis". Global flags, accepted anywhere: --seed <n> (default 42)
// and --threads <n> (trial-runner workers for solve; default 0 =
// hardware concurrency; cuts are identical for any value).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "gbis/baseline/hill_climb.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/models.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/analysis.hpp"
#include "gbis/graph/ops.hpp"
#include "gbis/harness/runner.hpp"
#include "gbis/harness/timer.hpp"
#include "gbis/io/dot.hpp"
#include "gbis/io/edge_list.hpp"
#include "gbis/io/metis.hpp"
#include "gbis/io/partition_io.hpp"
#include "gbis/kway/recursive.hpp"
#include "gbis/kway/refine.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/partition/metrics.hpp"
#include "gbis/rng/rng.hpp"

namespace {

using namespace gbis;

[[noreturn]] void usage() {
  std::cerr << "usage: see the header comment of tools/gbis_cli.cpp "
               "(gen | solve | kway | eval | stats | convert)\n";
  std::exit(2);
}

bool ends_with(const std::string& value, const std::string& suffix) {
  return value.size() >= suffix.size() &&
         value.compare(value.size() - suffix.size(), suffix.size(),
                       suffix) == 0;
}

Graph load_graph(const std::string& path) {
  return ends_with(path, ".metis") ? read_metis_file(path)
                                   : read_edge_list_file(path);
}

void save_graph(const std::string& path, const Graph& g) {
  if (ends_with(path, ".metis")) {
    write_metis_file(path, g);
  } else if (ends_with(path, ".dot")) {
    write_dot_file(path, g);
  } else {
    write_edge_list_file(path, g);
  }
}

double to_double(const std::string& s) { return std::strtod(s.c_str(), nullptr); }
std::uint64_t to_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}
std::uint32_t to_u32(const std::string& s) {
  return static_cast<std::uint32_t>(to_u64(s));
}

int cmd_gen(const std::vector<std::string>& args, Rng& rng) {
  if (args.size() < 2) usage();
  const std::string& model = args[0];
  const std::string& out_path = args.back();
  Graph g;
  if (model == "gbreg" && args.size() == 5) {
    g = make_regular_planted({to_u32(args[1]), to_u64(args[2]),
                              to_u32(args[3])},
                             rng);
  } else if (model == "g2set" && args.size() == 5) {
    g = make_planted(
        planted_params_for_degree(to_u32(args[1]), to_double(args[2]),
                                  to_u64(args[3])),
        rng);
  } else if (model == "gnp" && args.size() == 4) {
    g = make_gnp(to_u32(args[1]),
                 gnp_p_for_degree(to_u32(args[1]), to_double(args[2])), rng);
  } else if (model == "grid" && args.size() == 4) {
    g = make_grid(to_u32(args[1]), to_u32(args[2]));
  } else if (model == "ladder" && args.size() == 3) {
    g = make_ladder(to_u32(args[1]));
  } else if (model == "bintree" && args.size() == 3) {
    g = make_binary_tree(to_u32(args[1]));
  } else if (model == "geometric" && args.size() == 4) {
    g = make_geometric(
        to_u32(args[1]),
        geometric_radius_for_degree(to_u32(args[1]), to_double(args[2])),
        rng);
  } else if (model == "smallworld" && args.size() == 5) {
    g = make_small_world(to_u32(args[1]), to_u32(args[2]),
                         to_double(args[3]), rng);
  } else if (model == "prefattach" && args.size() == 4) {
    g = make_preferential_attachment(to_u32(args[1]), to_u32(args[2]), rng);
  } else {
    usage();
  }
  save_graph(out_path, g);
  std::cout << "wrote " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges to " << out_path << '\n';
  return 0;
}

Method parse_method(const std::string& name) {
  if (name == "kl") return Method::kKl;
  if (name == "sa") return Method::kSa;
  if (name == "ckl") return Method::kCkl;
  if (name == "csa") return Method::kCsa;
  if (name == "fm") return Method::kFm;
  if (name == "cfm") return Method::kCfm;
  if (name == "mlkl") return Method::kMultilevelKl;
  if (name == "greedy") return Method::kGreedy;
  if (name == "spectral") return Method::kSpectral;
  if (name == "random") return Method::kRandom;
  throw std::runtime_error("unknown method: " + name);
}

int cmd_solve(const std::vector<std::string>& args, Rng& rng,
              std::uint32_t threads) {
  if (args.size() < 2 || args.size() > 3) usage();
  const Graph g = load_graph(args[0]);

  // "quench" is CLI-only (not a harness Method): run it directly.
  std::vector<std::uint8_t> sides;
  Weight cut = 0;
  const WallTimer timer;
  if (args[1] == "quench") {
    Bisection b = Bisection::random(g, rng);
    hill_climb(b, rng);
    cut = b.cut();
    sides.assign(b.sides().begin(), b.sides().end());
  } else {
    const Method method = parse_method(args[1]);
    RunConfig config;
    config.starts = 2;
    config.threads = threads;
    const RunResult result = run_method(g, method, rng, config, &sides);
    cut = result.best_cut;
    std::cout << "cut " << cut << " in " << result.cpu_seconds
              << " cpu-s (" << result.wall_seconds << " wall-s) over "
              << config.starts << " starts\n";
    if (args.size() == 3) {
      std::vector<std::uint32_t> parts(sides.begin(), sides.end());
      write_partition_file(args[2], parts);
      std::cout << "wrote partition to " << args[2] << '\n';
    }
    return 0;
  }
  const double seconds = timer.elapsed_seconds();
  std::cout << "cut " << cut << " in " << seconds << " s\n";
  if (args.size() == 3) {
    std::vector<std::uint32_t> parts(sides.begin(), sides.end());
    write_partition_file(args[2], parts);
    std::cout << "wrote partition to " << args[2] << '\n';
  }
  return 0;
}

int cmd_kway(const std::vector<std::string>& args, Rng& rng) {
  if (args.size() < 2 || args.size() > 3) usage();
  const Graph g = load_graph(args[0]);
  const std::uint32_t k = to_u32(args[1]);
  const WallTimer timer;
  KwayPartition p = recursive_kway(g, k, rng);
  p = kway_refine(p, rng);
  std::cout << "k=" << k << " edge cut " << p.edge_cut()
            << ", balance factor " << p.balance_factor() << ", in "
            << timer.elapsed_seconds() << " s\n";
  if (args.size() == 3) {
    write_partition_file(args[2],
                         std::vector<std::uint32_t>(p.parts().begin(),
                                                    p.parts().end()));
    std::cout << "wrote partition to " << args[2] << '\n';
  }
  return 0;
}

int cmd_eval(const std::vector<std::string>& args) {
  if (args.size() != 2) usage();
  const Graph g = load_graph(args[0]);
  const auto parts = read_partition_file(args[1], g.num_vertices());
  std::uint32_t k = 1;
  for (std::uint32_t p : parts) k = std::max(k, p + 1);
  const KwayPartition partition(g, k, parts);
  std::cout << "k=" << k << " edge cut " << partition.edge_cut()
            << ", balance factor " << partition.balance_factor()
            << ", max count spread " << partition.max_count_spread() << '\n';
  if (k == 2) {
    std::vector<std::uint8_t> sides(parts.begin(), parts.end());
    const Bisection b(g, std::move(sides));
    const BisectionMetrics m = bisection_metrics(b);
    std::cout << "bisection: conductance " << m.conductance
              << ", expansion " << m.expansion << ", vs-random "
              << m.vs_random << '\n';
  }
  return 0;
}

int cmd_stats(const std::vector<std::string>& args) {
  if (args.size() != 1) usage();
  const Graph g = load_graph(args[0]);
  const DegreeStats degrees = degree_stats(g);
  std::cout << "vertices " << g.num_vertices() << ", edges "
            << g.num_edges() << '\n';
  std::cout << "degree min/avg/max " << degrees.min << "/"
            << degrees.average << "/" << degrees.max << '\n';
  std::cout << "components " << connected_components(g).count
            << ", forest " << (is_forest(g) ? "yes" : "no") << '\n';
  if (g.num_vertices() > 0) {
    std::cout << "degeneracy " << degeneracy(g) << ", triangles "
              << triangle_count(g) << ", clustering "
              << global_clustering(g) << ", pseudo-diameter "
              << pseudo_diameter(g) << '\n';
  }
  return 0;
}

int cmd_convert(const std::vector<std::string>& args) {
  if (args.size() != 2) usage();
  save_graph(args[1], load_graph(args[0]));
  std::cout << "converted " << args[0] << " -> " << args[1] << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::uint64_t seed = 42;
  std::uint32_t threads = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0) {
      if (i + 1 >= argc) usage();  // dangling flag: don't eat it as a path
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) usage();
      threads =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) usage();
  const std::string command = args.front();
  args.erase(args.begin());
  Rng rng(seed);
  try {
    if (command == "gen") return cmd_gen(args, rng);
    if (command == "solve") return cmd_solve(args, rng, threads);
    if (command == "kway") return cmd_kway(args, rng);
    if (command == "eval") return cmd_eval(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "convert") return cmd_convert(args);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  usage();
}
