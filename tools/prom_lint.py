#!/usr/bin/env python3
"""Validator for Prometheus text exposition format (version 0.0.4).

Usage: tools/prom_lint.py [--strict] FILE [FILE...]
Exit 0 when every file is lint-clean, 1 with one message per violation
otherwise. Checks the subset of the format gbis emits plus the rules
scrapers actually rely on:

  * line grammar: blank, "# HELP <name> <text>", "# TYPE <name> <type>",
    or "<name>[{labels}] <value>[ <timestamp>][ # {labels} <value>]"
  * metric and label names match the Prometheus regexes
  * at most one TYPE per metric, declared before its first sample
  * all samples of one metric are consecutive (grouped)
  * histogram buckets: le labels strictly increasing, cumulative counts
    non-decreasing, a "+Inf" bucket present and equal to _count
  * values parse as floats ("+Inf"/"-Inf"/"NaN" allowed)
  * exemplars (OpenMetrics "# {...} value" suffix): only on _bucket
    samples, never on the +Inf bucket, labels well-formed, trace_id a
    16-digit hex string, exemplar value within the bucket's le bound

--strict additionally requires every metric to declare HELP and TYPE,
both before the metric's first sample — the contract the gbis exporter
commits to, enforced in cli_smoke and CI.
"""

import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>-?\d+))?"
    r"(?: # \{(?P<ex_labels>[^}]*)\} (?P<ex_value>\S+))?$"
)
TRACE_ID_RE = re.compile(r"^[0-9a-f]{16}$")
LABEL_PAIR_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)  # raises ValueError on garbage; NaN parses


def base_metric(name):
    """Histogram/summary series share their parent's TYPE declaration."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def lint(path, strict=False):
    errors = []

    def err(lineno, message):
        errors.append(f"{path}:{lineno}: {message}")

    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().split("\n")
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]

    declared_types = {}  # metric -> type
    declared_help = set()  # metrics with a HELP line
    seen_samples = {}  # grouping metric -> last lineno
    closed = set()  # grouping metrics whose sample block ended
    histograms = {}  # metric -> {"buckets": [(le, count)], "count": n}
    last_group = None

    for lineno, line in enumerate(lines, start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not METRIC_RE.match(parts[2]):
                    err(lineno, f"malformed {parts[1]} line")
                    continue
                if parts[1] == "TYPE":
                    name = parts[2]
                    kind = parts[3].strip() if len(parts) == 4 else ""
                    if kind not in TYPES:
                        err(lineno, f"unknown TYPE {kind!r} for {name}")
                    if name in declared_types:
                        err(lineno, f"duplicate TYPE for {name}")
                    if name in seen_samples:
                        err(lineno, f"TYPE for {name} after its samples")
                    declared_types[name] = kind
                else:
                    name = parts[2]
                    if strict and name in seen_samples:
                        err(lineno, f"HELP for {name} after its samples")
                    declared_help.add(name)
            # Other comments are legal and ignored.
            continue

        match = SAMPLE_RE.match(line)
        if not match:
            err(lineno, f"unparseable line: {line!r}")
            continue
        name = match.group("name")
        labels = {}
        if match.group("labels"):
            for item in match.group("labels").split(","):
                pair = LABEL_PAIR_RE.match(item)
                if not pair:
                    err(lineno, f"malformed label {item!r}")
                    continue
                if not LABEL_RE.match(pair.group("key")):
                    err(lineno, f"bad label name {pair.group('key')!r}")
                labels[pair.group("key")] = pair.group("value")
        try:
            value = parse_value(match.group("value"))
        except ValueError:
            err(lineno, f"bad sample value {match.group('value')!r}")
            continue

        if match.group("ex_labels") is not None:
            if not name.endswith("_bucket"):
                err(lineno, f"exemplar on non-bucket sample {name}")
            if labels.get("le") in ("+Inf", "Inf"):
                err(lineno, f"exemplar on +Inf bucket of {name}")
            ex_labels = {}
            for item in match.group("ex_labels").split(","):
                pair = LABEL_PAIR_RE.match(item)
                if not pair:
                    err(lineno, f"malformed exemplar label {item!r}")
                    continue
                ex_labels[pair.group("key")] = pair.group("value")
            trace_id = ex_labels.get("trace_id", "")
            if not TRACE_ID_RE.match(trace_id):
                err(lineno, f"exemplar trace_id {trace_id!r} is not "
                            "16-digit lowercase hex")
            try:
                ex_value = parse_value(match.group("ex_value"))
            except ValueError:
                err(lineno,
                    f"bad exemplar value {match.group('ex_value')!r}")
            else:
                if "le" in labels:
                    try:
                        le = parse_value(labels["le"])
                    except ValueError:
                        le = None
                    if le is not None and ex_value > le:
                        err(lineno, f"exemplar value {ex_value} above "
                                    f"bucket bound le={labels['le']}")

        group = base_metric(name)
        if group in closed and group != last_group:
            err(lineno, f"samples of {group} are not consecutive")
        if last_group is not None and group != last_group:
            closed.add(last_group)
        last_group = group
        seen_samples[group] = lineno

        kind = declared_types.get(group)
        if kind == "histogram":
            hist = histograms.setdefault(group, {"buckets": [], "count": None})
            if name.endswith("_bucket"):
                if "le" not in labels:
                    err(lineno, f"{name} sample without le label")
                    continue
                try:
                    le = parse_value(labels["le"])
                except ValueError:
                    err(lineno, f"bad le value {labels['le']!r}")
                    continue
                buckets = hist["buckets"]
                if buckets and not le > buckets[-1][0]:
                    err(lineno, f"{group} le not increasing")
                if buckets and value < buckets[-1][1]:
                    err(lineno, f"{group} bucket counts decrease")
                buckets.append((le, value))
            elif name.endswith("_count"):
                hist["count"] = (lineno, value)

    for group, hist in histograms.items():
        buckets = hist["buckets"]
        if not buckets or buckets[-1][0] != float("inf"):
            errors.append(f"{path}: histogram {group} missing +Inf bucket")
            continue
        if hist["count"] is not None and hist["count"][1] != buckets[-1][1]:
            errors.append(
                f"{path}:{hist['count'][0]}: {group}_count "
                f"!= +Inf bucket ({hist['count'][1]} vs {buckets[-1][1]})"
            )

    if strict:
        for group, lineno in sorted(seen_samples.items()):
            if group not in declared_types:
                errors.append(
                    f"{path}: metric {group} has samples but no TYPE")
            if group not in declared_help:
                errors.append(
                    f"{path}: metric {group} has samples but no HELP")
    return errors


def main(argv):
    strict = False
    paths = []
    for arg in argv[1:]:
        if arg == "--strict":
            strict = True
        else:
            paths.append(arg)
    if not paths:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    failures = []
    for path in paths:
        failures.extend(lint(path, strict=strict))
    for message in failures:
        print(message, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
