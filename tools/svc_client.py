#!/usr/bin/env python3
"""Loopback smoke client for `gbis serve` socket mode.

Spawns the server on an ephemeral endpoint, waits for its --ready-file,
streams a request file over the socket, prints the response stream to
stdout, then sends SIGTERM and requires the documented graceful-drain
exit code (130).

    svc_client.py GBIS_BINARY REQUEST_FILE [--transport tcp|unix]

Two delivery modes:

  * Default: send the whole file, half-close, read to EOF — the
    throughput shape, and the one CI diffs against `gbis serve
    --replay` (byte-identical modulo the documented `_us` fields).
  * --retry N: send one request line at a time and wait for its
    response. A brownout shed ("rejected: brownout ...") is retried up
    to N times, honoring the server's `retry_after_ms` backoff hint —
    the reference implementation of the docs/SERVICE.md retry contract.
  * --chain: send one line at a time, substituting `@fp:ID` tokens with
    the `fingerprint` field of the earlier response whose id was ID —
    how a request file scripts a mutate/warm-solve chain ("mutate the
    graph, then solve the child") without knowing fingerprints ahead of
    time. --record FILE writes the resolved request lines, so the same
    chain can then be replayed verbatim over stdio (`gbis serve
    --replay FILE`) and diffed against the socket responses.

--sigterm-count K sends K SIGTERMs 50 ms apart at teardown. With the
escalating handlers (docs/ROBUSTNESS.md) the exit code stays 130 for
any K: the second signal shortens the drain, it never turns into a
signal death.

--sigquit-after-ms M sends one SIGQUIT M milliseconds after the
request stream starts flowing — the flight-recorder probe. SIGQUIT
dumps and keeps serving, so the session and the 130 teardown proceed
unchanged; CI pairs this with --serve-arg --flight-file to assert the
dump captures in-flight work.

Exit status: 0 only when every step held — the server came up, answered
the full request stream, and exited 130 on SIGTERM.
"""

import argparse
import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time


def wait_for_ready_file(path, proc, timeout_seconds=10.0):
    """Polls for the atomically-published ready file; returns its lines."""
    deadline = time.monotonic() + timeout_seconds
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                f"server exited early with status {proc.returncode}")
        try:
            with open(path, encoding="utf-8") as handle:
                lines = [line.strip() for line in handle if line.strip()]
            if lines:
                return lines
        except FileNotFoundError:
            pass
        time.sleep(0.02)
    raise SystemExit(f"ready file {path} did not appear in "
                     f"{timeout_seconds:.0f}s")


def connect(ready_lines, transport):
    """Connects to the endpoint the server published for `transport`."""
    for line in ready_lines:
        kind, _, endpoint = line.partition(" ")
        if transport == "tcp" and kind == "tcp":
            host, _, port = endpoint.rpartition(":")
            sock = socket.create_connection((host, int(port)), timeout=30)
            return sock
        if transport == "unix" and kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(30)
            sock.connect(endpoint)
            return sock
    raise SystemExit(f"ready file has no {transport} endpoint: {ready_lines}")


def run_session(sock, request_bytes):
    """Sends the whole request file, half-closes, reads until EOF."""
    sock.sendall(request_bytes)
    sock.shutdown(socket.SHUT_WR)  # EOF tells the server we are done
    chunks = []
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        chunks.append(chunk)
    sock.close()
    return b"".join(chunks)


def read_line(sock, buffer):
    """Reads one newline-terminated response from the socket."""
    while b"\n" not in buffer:
        chunk = sock.recv(65536)
        if not chunk:
            raise SystemExit("server closed the connection mid-stream")
        buffer += chunk
    line, _, rest = buffer.partition(b"\n")
    return line, rest


def backoff_hint(response_line):
    """Returns retry_after_ms when the response is a brownout shed."""
    try:
        response = json.loads(response_line)
    except ValueError:
        return None
    error = response.get("error", "")
    if response.get("ok") or not error.startswith("rejected: brownout"):
        return None
    return int(response.get("retry_after_ms", 100))


def run_session_with_retry(sock, request_bytes, max_retries):
    """One request at a time; brownout sheds honor retry_after_ms."""
    responses = []
    buffer = b""
    for request in request_bytes.splitlines():
        if not request.strip():
            continue
        attempts = 0
        while True:
            sock.sendall(request + b"\n")
            response, buffer = read_line(sock, buffer)
            hint_ms = backoff_hint(response)
            if hint_ms is None or attempts >= max_retries:
                responses.append(response)
                break
            attempts += 1
            time.sleep(hint_ms / 1000.0)
    sock.close()
    return b"".join(line + b"\n" for line in responses)


def annotate_quality(request_bytes, quality):
    """Injects `"quality":"<tier>"` into every solve request line.

    The field is spliced in right after the opening brace, leaving the
    rest of the line byte-for-byte untouched — so a --record file (or a
    stdio replay of the same annotated stream) stays diffable against
    the socket responses. Lines that already carry a quality, and
    non-solve ops (ping/stats/mutate), pass through unchanged.
    """
    annotated = []
    for line in request_bytes.splitlines():
        stripped = line.strip()
        if stripped:
            try:
                request = json.loads(stripped)
            except ValueError:
                request = None
            if (isinstance(request, dict) and request
                    and "quality" not in request
                    and request.get("op", "solve") == "solve"
                    and stripped.startswith(b"{")):
                line = (b'{"quality":"' + quality.encode("utf-8") + b'",' +
                        stripped[1:])
        annotated.append(line)
    return b"".join(line + b"\n" for line in annotated)


FP_TOKEN = re.compile(r"@fp:([A-Za-z0-9_.-]+)")


def run_session_chain(sock, request_bytes, record_path):
    """One request at a time, resolving @fp:ID fingerprint references.

    Each response's `fingerprint` field is recorded under its `id`;
    later requests may reference it as `@fp:ID` (mutate responses carry
    the *child* fingerprint, which is the token chains care about).
    """
    fingerprints = {}

    def resolve(match):
        ref = match.group(1)
        if ref not in fingerprints:
            raise SystemExit(f"@fp:{ref} references a response with no "
                             "recorded fingerprint")
        return fingerprints[ref]

    responses = []
    resolved_lines = []
    buffer = b""
    for request in request_bytes.splitlines():
        request = request.strip()
        if not request:
            continue
        resolved = FP_TOKEN.sub(resolve, request.decode("utf-8"))
        resolved_lines.append(resolved)
        sock.sendall(resolved.encode("utf-8") + b"\n")
        response, buffer = read_line(sock, buffer)
        responses.append(response)
        try:
            parsed = json.loads(response)
        except ValueError:
            continue
        if parsed.get("ok") and "fingerprint" in parsed and "id" in parsed:
            fingerprints[parsed["id"]] = parsed["fingerprint"]
    sock.close()
    if record_path:
        with open(record_path, "w", encoding="utf-8") as handle:
            handle.write("".join(line + "\n" for line in resolved_lines))
    return b"".join(line + b"\n" for line in responses)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("gbis", help="path to the gbis binary")
    parser.add_argument("requests", help="NDJSON request file to stream")
    parser.add_argument("--transport", choices=("tcp", "unix"),
                        default="tcp")
    parser.add_argument("--serve-arg", action="append", default=[],
                        help="extra argument forwarded to `gbis serve`")
    parser.add_argument("--retry", type=int, default=0, metavar="N",
                        help="line-at-a-time mode: retry brownout sheds "
                             "up to N times, honoring retry_after_ms")
    parser.add_argument("--chain", action="store_true",
                        help="line-at-a-time mode resolving @fp:ID "
                             "fingerprint references (mutate chains)")
    parser.add_argument("--record", metavar="FILE", default="",
                        help="with --chain: write the resolved request "
                             "lines to FILE for a stdio replay diff")
    parser.add_argument("--quality", choices=("fast", "balanced", "best"),
                        default="",
                        help="inject this ladder rung into every solve "
                             "request line (including --chain records) "
                             "before sending")
    parser.add_argument("--sigterm-count", type=int, default=1, metavar="K",
                        help="SIGTERMs sent 50 ms apart at teardown "
                             "(exit must stay 130 for any K)")
    parser.add_argument("--sigquit-after-ms", type=int, default=0,
                        metavar="M",
                        help="send one SIGQUIT M ms into the session "
                             "(flight-recorder dump; serving continues)")
    args = parser.parse_args()

    with open(args.requests, "rb") as handle:
        request_bytes = handle.read()
    if args.quality:
        request_bytes = annotate_quality(request_bytes, args.quality)

    with tempfile.TemporaryDirectory(prefix="gbis_svc_client_") as tmp:
        ready_file = os.path.join(tmp, "ready")
        cmd = [args.gbis, "serve", "--ready-file", ready_file]
        if args.transport == "tcp":
            cmd += ["--listen", "127.0.0.1:0"]
        else:
            cmd += ["--listen-unix", os.path.join(tmp, "gbis.sock")]
        cmd += args.serve_arg
        proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL)
        try:
            ready_lines = wait_for_ready_file(ready_file, proc)
            sock = connect(ready_lines, args.transport)
            if args.sigquit_after_ms > 0:
                # Fire-and-forget: the dump handler returns, so the
                # session below is unaffected — that is the point.
                def fire_sigquit():
                    if proc.poll() is None:
                        proc.send_signal(signal.SIGQUIT)
                timer = threading.Timer(args.sigquit_after_ms / 1000.0,
                                        fire_sigquit)
                timer.daemon = True
                timer.start()
            if args.chain:
                responses = run_session_chain(sock, request_bytes,
                                              args.record)
            elif args.retry > 0:
                responses = run_session_with_retry(sock, request_bytes,
                                                   args.retry)
            else:
                responses = run_session(sock, request_bytes)
            sys.stdout.buffer.write(responses)
            sys.stdout.buffer.flush()
        finally:
            for i in range(max(1, args.sigterm_count)):
                if proc.poll() is not None:
                    break
                if i > 0:
                    time.sleep(0.05)
                proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
                raise SystemExit("server did not drain within 30s of SIGTERM")

    if proc.returncode != 130:
        raise SystemExit(f"server exited {proc.returncode} after SIGTERM, "
                         "expected 130 (graceful drain)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
